"""Pluggable execution backends for the inference :class:`~repro.api.Engine`.

A backend decides *how* a compiled crossbar stage is executed — which
sampling engine turns a :class:`~repro.hardware.accelerator.TiledLinearLayer`
plus a flat +-1 activation batch into the layer's +-1 outputs. Backends
are stateless strategy objects registered under string keys so callers
(CLI flags, experiment configs, serving layers) select them by name, and
new execution strategies (multiprocessing shards, GPU offload, remote
workers) plug in without touching the engine:

    from repro.api import register_backend

    @register_backend("my-backend", summary="...")
    class MyBackend:
        deterministic = False

        def run_layer(self, layer, flat, *, rng, validate=None):
            ...

First-class backends:

``"ideal"``
    Noise-free sign of the exact pre-activation (the equivalence
    reference; bit-for-bit equal to the legacy ``mode="ideal"``).
``"stochastic"``
    The hardware-default dispatch: fused inverse-CDF Binomial counts for
    an exact APC, packed bit-level otherwise — exactly the legacy
    ``mode="stochastic"`` path.
``"stochastic-dense"``
    Legacy per-tile sampling on dense float ``(L, N, cols)`` windows.
``"stochastic-packed"``
    Bit-level execution on uint64 bit-plane words (:mod:`repro.sc.packed`).
``"stochastic-fused-batched"``
    All column tiles of a stage concatenated into **one**
    ``Generator.binomial`` draw — one RNG invocation per layer, for the
    RNG-bound regime of the fused path. Draws from the session's
    generator, so the :class:`~repro.api.Session` owns the randomness.
``"stochastic-batched"``
    Fused inverse-CDF sampling on caller-owned uniforms: the whole
    shard's draws are hoisted into **one** ``Generator.random`` call
    (:meth:`StochasticBatchedBackend.begin_shard`) and served to each
    layer pass as consecutive slices — bit-identical to per-pass draws
    from the same session generator, one RNG invocation per *shard*.
``"stochastic-parallel"``
    Shard-level strategy (:mod:`repro.api.parallel`, a facade over
    :class:`repro.runtime.scheduler.ShardParallelScheduler`):
    micro-batch shards of the session's
    :class:`~repro.runtime.plan.ShardPlan` are executed on a process
    pool with shared-memory activation transport, bit-identical to
    serial execution for the same session seed. Implements ``run_plan``
    / ``run_shards`` instead of ``run_layer``.

Backends answer *how* a crossbar stage is sampled; the orthogonal
question of *where shards and tiles run* belongs to the runtime
schedulers (:mod:`repro.runtime.scheduler` — ``"serial"``,
``"shard-parallel"``, ``"tile-parallel"``), selected per session via
``engine.session(scheduler=...)``.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Tuple, Type

import numpy as np

from repro.hardware.accelerator import TiledLinearLayer
from repro.sc.binomial import DrawBatch

_REGISTRY: Dict[str, Type] = {}
_ALIASES: Dict[str, str] = {}
#: Cached instances of stateless backends — one strategy object per
#: registered name, shared by every session (constructing a fresh
#: object per ``Session.run`` was pure garbage churn). Stateful
#: backends (``stateless = False``, e.g. process pools) are excluded.
_INSTANCES: Dict[str, object] = {}
#: When set (CLI ``--workers``), requests for the default-dispatch
#: ``"stochastic"`` backend resolve to this strategy instance instead,
#: so existing experiments parallelize without threading a new argument
#: through every harness.
_DISPATCH_OVERRIDE = None


def register_backend(name: str, *, aliases: Tuple[str, ...] = (), summary: str = ""):
    """Class decorator registering an execution backend under ``name``.

    The class must provide ``run_layer(layer, flat, *, rng, validate)``
    returning the +-1 ``(N, out)`` outputs, and may set a
    ``deterministic`` flag (True suppresses sampling telemetry).
    """

    def decorator(cls):
        if name in _REGISTRY or name in _ALIASES:
            raise ValueError(f"backend {name!r} is already registered")
        cls.name = name
        if summary:
            cls.summary = summary
        _REGISTRY[name] = cls
        for alias in aliases:
            if alias in _REGISTRY or alias in _ALIASES:
                raise ValueError(f"backend alias {alias!r} is already registered")
            _ALIASES[alias] = name
        return cls

    return decorator


def available_backends() -> List[str]:
    """Canonical (alias-free) backend names, sorted."""
    return sorted(_REGISTRY)


def backend_aliases() -> Dict[str, str]:
    """Alias -> canonical-name mapping (e.g. ``exact -> ideal``)."""
    return dict(_ALIASES)


def set_dispatch_override(backend):
    """Install (or clear, with None) the default-dispatch override.

    While installed, :func:`get_backend` resolves ``"stochastic"`` /
    ``"auto"`` to ``backend`` instead of the registered class — the CLI
    uses this to route any experiment's stochastic inference through a
    configured parallel backend. Returns the previous override so
    callers can restore it.
    """
    global _DISPATCH_OVERRIDE
    previous = _DISPATCH_OVERRIDE
    _DISPATCH_OVERRIDE = backend
    return previous


def get_backend(name, *, allow_override: bool = True):
    """Resolve the backend registered under ``name`` (or an alias).

    Passing an object that already satisfies a backend protocol
    (``run_layer`` for layer-level strategies, ``run_plan`` for
    shard-level ones) returns it unchanged, so engines accept both
    names and ready-made strategy instances. Stateless backends are
    cached — every caller shares one instance per name.

    ``allow_override=False`` ignores the dispatch override installed by
    :func:`set_dispatch_override`; the parallel backend resolves its
    *inner* strategy this way so routing ``"stochastic"`` to a process
    pool cannot recurse (a forked worker inherits the override global).
    """
    if hasattr(name, "run_layer") or hasattr(name, "run_plan"):
        return name
    key = _ALIASES.get(name, name)
    cls = _REGISTRY.get(key)
    if cls is None:
        raise KeyError(
            f"unknown backend {name!r}; registered: {', '.join(available_backends())}"
        )
    if allow_override and key == "stochastic" and _DISPATCH_OVERRIDE is not None:
        return _DISPATCH_OVERRIDE
    if not getattr(cls, "stateless", True):
        return cls()
    instance = _INSTANCES.get(key)
    if instance is None:
        instance = _INSTANCES[key] = cls()
    return instance


def resolve_strategy(source):
    """Resolve ``source`` (name or instance) to ``(strategy, owned)``.

    ``owned`` is True only when this call *constructed* a throwaway
    stateful instance from a name — the caller is then responsible for
    closing it. Caller-provided instances, cached stateless singletons,
    and the shared dispatch-override instance are never owned (closing
    the override from a session would tear down the pool every other
    caller is using).
    """
    strategy = get_backend(source)
    owned = (
        isinstance(source, str)
        and not getattr(strategy, "stateless", True)
        and strategy is not _DISPATCH_OVERRIDE
    )
    return strategy, owned


class ExecutionBackend:
    """Base class for execution strategies (subclassing is optional)."""

    name = "?"
    summary = ""
    #: True when the backend consumes no randomness (telemetry then
    #: reports zero sampled windows).
    deterministic = False
    #: Stateless strategies are cached by :func:`get_backend` (one
    #: shared instance per name). Backends that carry configuration or
    #: resources (worker pools) set this False and are constructed
    #: fresh per request-for-name.
    stateless = True

    def run_layer(
        self,
        layer: TiledLinearLayer,
        flat: np.ndarray,
        *,
        rng: np.random.Generator,
        validate=None,
    ) -> np.ndarray:  # pragma: no cover - interface
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<backend {self.name}>"


@register_backend("ideal", aliases=("exact",), summary="noise-free sign reference")
class IdealBackend(ExecutionBackend):
    deterministic = True

    def run_layer(self, layer, flat, *, rng, validate=None):
        return layer.ideal_output(flat)


@register_backend(
    "stochastic",
    aliases=("auto",),
    summary="hardware-default dispatch (fused tables / packed bit-level)",
)
class StochasticAutoBackend(ExecutionBackend):
    def run_layer(self, layer, flat, *, rng, validate=None):
        return layer.forward(flat, validate=validate)


@register_backend(
    "stochastic-dense", summary="legacy per-tile sampling on dense float windows"
)
class StochasticDenseBackend(ExecutionBackend):
    def run_layer(self, layer, flat, *, rng, validate=None):
        return layer.forward_dense(flat, validate=validate)


@register_backend(
    "stochastic-packed", summary="bit-level path on uint64 bit-plane words"
)
class StochasticPackedBackend(ExecutionBackend):
    def run_layer(self, layer, flat, *, rng, validate=None):
        return layer.forward_packed(flat, validate=validate)


@register_backend(
    "stochastic-fused-batched",
    summary="one concatenated Generator.binomial draw per layer",
)
class StochasticFusedBatchedBackend(ExecutionBackend):
    def run_layer(self, layer, flat, *, rng, validate=None):
        return layer.forward_fused_batched(flat, validate=validate, rng=rng)


@register_backend(
    "stochastic-batched",
    summary="caller-owned uniforms, one draw batch per shard pass",
)
class StochasticBatchedBackend(ExecutionBackend):
    """Fused inverse-CDF sampling on the *session's* generator, with the
    whole shard's uniforms pre-drawn in one ``Generator.random`` call.

    :func:`repro.runtime.plan.run_stages` hands the backend the
    micro-batch via :meth:`begin_shard` before the stage walk; the
    backend sizes a :class:`~repro.sc.binomial.DrawBatch` for every
    uniform the shard will consume and serves consecutive slices to
    each layer pass — bit-identical to drawing per pass from the same
    generator (the draw-batching contract), but one RNG invocation per
    shard instead of one per layer. Geometries the fused tables cannot
    serve (no fused sampler, very long windows) fall back to per-pass
    draws from the shard generator automatically.

    The instance is a cached singleton shared across sessions; the
    in-flight draw batch is thread-local, so concurrent sessions (the
    serving tier's threads) never see each other's uniforms.
    """

    def __init__(self) -> None:
        self._local = threading.local()

    def begin_shard(self, network, x, rng) -> None:
        # Function-scoped import: repro.api.backends sits *below*
        # repro.runtime in the layering contract; only module-scope
        # imports count against it.
        from repro.runtime.plan import batched_draw_elements

        total = batched_draw_elements(network, x.shape[1:], x.shape[0])
        self._local.draws = DrawBatch(rng, total) if total is not None else None

    def run_layer(self, layer, flat, *, rng, validate=None):
        return layer.forward_batched(
            flat,
            validate=validate,
            rng=rng,
            uniforms=getattr(self._local, "draws", None),
        )
