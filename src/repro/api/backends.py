"""Pluggable execution backends for the inference :class:`~repro.api.Engine`.

A backend decides *how* a compiled crossbar stage is executed — which
sampling engine turns a :class:`~repro.hardware.accelerator.TiledLinearLayer`
plus a flat +-1 activation batch into the layer's +-1 outputs. Backends
are stateless strategy objects registered under string keys so callers
(CLI flags, experiment configs, serving layers) select them by name, and
new execution strategies (multiprocessing shards, GPU offload, remote
workers) plug in without touching the engine:

    from repro.api import register_backend

    @register_backend("my-backend", summary="...")
    class MyBackend:
        deterministic = False

        def run_layer(self, layer, flat, *, rng, validate=None):
            ...

First-class backends:

``"ideal"``
    Noise-free sign of the exact pre-activation (the equivalence
    reference; bit-for-bit equal to the legacy ``mode="ideal"``).
``"stochastic"``
    The hardware-default dispatch: fused inverse-CDF Binomial counts for
    an exact APC, packed bit-level otherwise — exactly the legacy
    ``mode="stochastic"`` path.
``"stochastic-dense"``
    Legacy per-tile sampling on dense float ``(L, N, cols)`` windows.
``"stochastic-packed"``
    Bit-level execution on uint64 bit-plane words (:mod:`repro.sc.packed`).
``"stochastic-fused-batched"``
    All column tiles of a stage concatenated into **one**
    ``Generator.binomial`` draw — one RNG invocation per layer, for the
    RNG-bound regime of the fused path. Draws from the session's
    generator, so the :class:`~repro.api.Session` owns the randomness.
"""

from __future__ import annotations

from typing import Dict, List, Tuple, Type

import numpy as np

from repro.hardware.accelerator import TiledLinearLayer

_REGISTRY: Dict[str, Type] = {}
_ALIASES: Dict[str, str] = {}


def register_backend(name: str, *, aliases: Tuple[str, ...] = (), summary: str = ""):
    """Class decorator registering an execution backend under ``name``.

    The class must provide ``run_layer(layer, flat, *, rng, validate)``
    returning the +-1 ``(N, out)`` outputs, and may set a
    ``deterministic`` flag (True suppresses sampling telemetry).
    """

    def decorator(cls):
        if name in _REGISTRY or name in _ALIASES:
            raise ValueError(f"backend {name!r} is already registered")
        cls.name = name
        if summary:
            cls.summary = summary
        _REGISTRY[name] = cls
        for alias in aliases:
            if alias in _REGISTRY or alias in _ALIASES:
                raise ValueError(f"backend alias {alias!r} is already registered")
            _ALIASES[alias] = name
        return cls

    return decorator


def available_backends() -> List[str]:
    """Canonical (alias-free) backend names, sorted."""
    return sorted(_REGISTRY)


def get_backend(name):
    """Instantiate the backend registered under ``name`` (or an alias).

    Passing an object that already satisfies the backend protocol (has
    ``run_layer``) returns it unchanged, so engines accept both names
    and ready-made strategy instances.
    """
    if hasattr(name, "run_layer"):
        return name
    key = _ALIASES.get(name, name)
    cls = _REGISTRY.get(key)
    if cls is None:
        raise KeyError(
            f"unknown backend {name!r}; registered: {', '.join(available_backends())}"
        )
    return cls()


class ExecutionBackend:
    """Base class for execution strategies (subclassing is optional)."""

    name = "?"
    summary = ""
    #: True when the backend consumes no randomness (telemetry then
    #: reports zero sampled windows).
    deterministic = False

    def run_layer(
        self,
        layer: TiledLinearLayer,
        flat: np.ndarray,
        *,
        rng: np.random.Generator,
        validate=None,
    ) -> np.ndarray:  # pragma: no cover - interface
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<backend {self.name}>"


@register_backend("ideal", aliases=("exact",), summary="noise-free sign reference")
class IdealBackend(ExecutionBackend):
    deterministic = True

    def run_layer(self, layer, flat, *, rng, validate=None):
        return layer.ideal_output(flat)


@register_backend(
    "stochastic",
    aliases=("auto",),
    summary="hardware-default dispatch (fused tables / packed bit-level)",
)
class StochasticAutoBackend(ExecutionBackend):
    def run_layer(self, layer, flat, *, rng, validate=None):
        return layer.forward(flat, validate=validate)


@register_backend(
    "stochastic-dense", summary="legacy per-tile sampling on dense float windows"
)
class StochasticDenseBackend(ExecutionBackend):
    def run_layer(self, layer, flat, *, rng, validate=None):
        return layer.forward_dense(flat, validate=validate)


@register_backend(
    "stochastic-packed", summary="bit-level path on uint64 bit-plane words"
)
class StochasticPackedBackend(ExecutionBackend):
    def run_layer(self, layer, flat, *, rng, validate=None):
        return layer.forward_packed(flat, validate=validate)


@register_backend(
    "stochastic-fused-batched",
    summary="one concatenated Generator.binomial draw per layer",
)
class StochasticFusedBatchedBackend(ExecutionBackend):
    def run_layer(self, layer, flat, *, rng, validate=None):
        return layer.forward_fused_batched(flat, validate=validate, rng=rng)
