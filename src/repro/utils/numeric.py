"""Small numeric helpers shared across device, SC, and training code."""

from __future__ import annotations

import numpy as np
from scipy import special


def erf(x):
    """Vectorized error function (thin wrapper so callers avoid scipy)."""
    return special.erf(x)


def clip_unit_interval(p):
    """Clip probabilities into [0, 1]; guards erf round-off at the tails."""
    return np.clip(p, 0.0, 1.0)


def is_power_of_two(n: int) -> bool:
    """True when ``n`` is a positive power of two."""
    return n > 0 and (n & (n - 1)) == 0


def linear_interpolate(x: float, x0: float, x1: float, y0: float, y1: float) -> float:
    """Linear interpolation of y(x) between (x0, y0) and (x1, y1)."""
    if x1 == x0:
        return 0.5 * (y0 + y1)
    t = (x - x0) / (x1 - x0)
    return y0 + t * (y1 - y0)
