"""Deterministic random-number management.

Every stochastic component in the library (AQFP buffer sampling, stochastic
number generation, synthetic data, weight init) draws from an explicit
``numpy.random.Generator`` so that experiments are reproducible end to end.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

SeedLike = Union[None, int, np.random.Generator]


def new_rng(seed: SeedLike = None) -> np.random.Generator:
    """Return a ``numpy.random.Generator`` from a seed, generator, or None.

    Passing an existing generator returns it unchanged, which lets callers
    thread one RNG through a whole pipeline.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_rng(rng: np.random.Generator, count: int) -> list:
    """Split ``rng`` into ``count`` independent child generators."""
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    seeds = rng.integers(0, 2**63 - 1, size=count)
    return [np.random.default_rng(int(s)) for s in seeds]


class RngMixin:
    """Mixin giving a class a lazily created, seedable ``.rng`` attribute."""

    def __init__(self, seed: SeedLike = None) -> None:
        self._rng: Optional[np.random.Generator] = (
            None if seed is None else new_rng(seed)
        )

    @property
    def rng(self) -> np.random.Generator:
        if self._rng is None:
            self._rng = np.random.default_rng()
        return self._rng

    def reseed(self, seed: SeedLike) -> None:
        """Replace the generator (used by tests to pin randomness)."""
        self._rng = new_rng(seed)
