"""Deterministic random-number management.

Every stochastic component in the library (AQFP buffer sampling, stochastic
number generation, synthetic data, weight init) draws from an explicit
``numpy.random.Generator`` so that experiments are reproducible end to end.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np
from scipy import special

SeedLike = Union[None, int, np.random.Generator]


def new_rng(seed: SeedLike = None) -> np.random.Generator:
    """Return a ``numpy.random.Generator`` from a seed, generator, or None.

    Passing an existing generator returns it unchanged, which lets callers
    thread one RNG through a whole pipeline.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_rng(rng: np.random.Generator, count: int) -> list:
    """Split ``rng`` into ``count`` independent child generators."""
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    seeds = rng.integers(0, 2**63 - 1, size=count)
    return [np.random.default_rng(int(s)) for s in seeds]


def binomial_cdf(p: np.ndarray, n: int) -> np.ndarray:
    """Binomial(n, p) CDF levels per element: shape ``p.shape + (n + 1,)``.

    The pmf is built in log space — ``log C(n,k) + k log p + (n-k)
    log q`` via ``gammaln`` — so large ``n`` with mid-range ``p`` cannot
    underflow the way a ``q ** n``-anchored multiplicative recurrence
    does (``0.4 ** 1024`` is 0.0 in float64, which would zero every
    level and pin inverse-CDF samples at ``n``). Intended for cached
    tables (the crossbar count sampler): the build cost is one exp per
    level, amortized across every draw from the table.
    """
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    p = np.asarray(p, dtype=np.float64)
    k = np.arange(n + 1, dtype=np.float64)
    log_comb = special.gammaln(n + 1.0) - special.gammaln(k + 1.0) - special.gammaln(
        n - k + 1.0
    )
    with np.errstate(divide="ignore", invalid="ignore"):
        log_p = np.log(p)[..., None]
        log_q = np.log1p(-p)[..., None]
        pmf = np.exp(log_comb + k * log_p + (n - k) * log_q)
    # p == 0 / p == 1 hit 0 * -inf above; their laws are point masses.
    pmf = np.where((p == 0.0)[..., None], k == 0.0, pmf)
    pmf = np.where((p == 1.0)[..., None], k == float(n), pmf)
    return np.cumsum(pmf, axis=-1)


class RngMixin:
    """Mixin giving a class a lazily created, seedable ``.rng`` attribute.

    Generator construction is deferred until the first ``.rng`` access:
    seeding a ``PCG64`` generator costs ~7us, and a tiled layer holds
    one sampler per tile, so eager construction used to dominate
    ``seed_shard`` in the shard-parallel hot path. Components that
    never draw (e.g. samplers on a shard that only runs the fused path)
    now never pay it. The stream contract is unchanged — the generator
    a given seed produces is the same, only *when* it is built moves.
    """

    def __init__(self, seed: SeedLike = None) -> None:
        self._rng: Optional[np.random.Generator] = None
        self._rng_seed: SeedLike = None
        if isinstance(seed, np.random.Generator):
            self._rng = seed
        else:
            self._rng_seed = seed

    @property
    def rng(self) -> np.random.Generator:
        if self._rng is None:
            self._rng = np.random.default_rng(self._rng_seed)
            self._rng_seed = None
        return self._rng

    def reseed(self, seed: SeedLike) -> None:
        """Replace the generator (used by tests to pin randomness)."""
        if isinstance(seed, np.random.Generator):
            self._rng = seed
            self._rng_seed = None
        else:
            self._rng = None
            self._rng_seed = seed
