"""Shared utilities: seeded RNG management, small numeric helpers."""

from repro.utils.rng import RngMixin, new_rng, spawn_rng
from repro.utils.serialization import load_into, load_state_dict, save_state_dict
from repro.utils.numeric import (
    clip_unit_interval,
    erf,
    is_power_of_two,
    linear_interpolate,
)

__all__ = [
    "RngMixin",
    "new_rng",
    "spawn_rng",
    "clip_unit_interval",
    "erf",
    "is_power_of_two",
    "linear_interpolate",
    "save_state_dict",
    "load_state_dict",
    "load_into",
]
