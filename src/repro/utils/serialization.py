"""Model checkpointing: save/load state dicts as .npz archives."""

from __future__ import annotations

import json
import pathlib
from typing import Dict, Optional, Union

import numpy as np

from repro.autograd.module import Module

PathLike = Union[str, pathlib.Path]

_META_KEY = "__repro_meta__"


def save_state_dict(
    module: Module,
    path: PathLike,
    metadata: Optional[Dict] = None,
) -> pathlib.Path:
    """Serialize a module's parameters + buffers to a compressed .npz.

    ``metadata`` (a JSON-serializable dict — e.g. the hardware config
    and training recipe) travels with the checkpoint.
    """
    path = pathlib.Path(path)
    if path.suffix != ".npz":
        path = path.with_suffix(".npz")
    state = module.state_dict()
    payload = dict(state)
    payload[_META_KEY] = np.frombuffer(
        json.dumps(metadata or {}).encode("utf-8"), dtype=np.uint8
    )
    path.parent.mkdir(parents=True, exist_ok=True)
    np.savez_compressed(path, **payload)
    return path


def load_state_dict(path: PathLike) -> Dict:
    """Load a checkpoint; returns ``{"state": {...}, "metadata": {...}}``."""
    path = pathlib.Path(path)
    with np.load(path) as archive:
        state = {k: archive[k] for k in archive.files if k != _META_KEY}
        metadata = {}
        if _META_KEY in archive.files:
            metadata = json.loads(bytes(archive[_META_KEY].tobytes()).decode("utf-8"))
    return {"state": state, "metadata": metadata}


def load_into(module: Module, path: PathLike) -> Dict:
    """Load a checkpoint into ``module``; returns the metadata."""
    payload = load_state_dict(path)
    module.load_state_dict(payload["state"])
    return payload["metadata"]
