"""Model -> accelerator compiler (BN matching + tiling).

For every randomized binary cell the compiler:

1. binarizes the trained real weights (sign),
2. folds BN + HardTanh + binarization into per-column threshold currents
   via Eq. 16 (:func:`repro.core.bn_matching.match_batch_norm`), using the
   *running* BN statistics (inference-time behaviour),
3. handles negative-slope channels (Eq. 15) by negating the column's
   weights and threshold — an output inversion costs nothing in AQFP,
4. tiles the resulting +-1 matrix over ``Cs x Cs`` crossbars with the
   threshold current divided evenly across row tiles (Sec. 5.2).

Supported topologies: :class:`repro.models.Mlp` and
:class:`repro.models.VggSmall` (sequential pipelines). The binarized
ResNet-18's value-domain skip connections need an adder outside the
crossbar dataflow; its hardware cost is modeled in
:mod:`repro.hardware.cost`, but cycle-accurate execution is out of scope
(documented in DESIGN.md).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Union

import numpy as np

from repro.core.bn_matching import match_batch_norm
from repro.core.layers import BinaryLinear, RandomizedBinaryConv2d, RandomizedBinaryLinear
from repro.hardware.accelerator import TiledLinearLayer
from repro.hardware.config import HardwareConfig
from repro.mapping.tiling import conv_output_geometry, conv_weight_to_matrix
from repro.models.common import InputBinarize, ThermometerEncode
from repro.models.mlp import Mlp
from repro.models.vgg import VggSmall
from repro.utils.rng import SeedLike, new_rng, spawn_rng


# ----------------------------------------------------------------------
# Stage records
# ----------------------------------------------------------------------
@dataclass
class SignStage:
    """Input sign binarization."""


@dataclass
class ThermometerStage:
    """Input thermometer encoding (+-1 planes)."""

    thresholds: np.ndarray


@dataclass
class LinearStage:
    """A fully connected binary layer on crossbars."""

    layer: TiledLinearLayer


@dataclass
class ConvStage:
    """A convolutional binary layer on crossbars (im2col lowering)."""

    layer: TiledLinearLayer
    kernel: int
    stride: int
    padding: int
    out_channels: int


@dataclass
class PoolStage:
    """2x2 max pooling (digital OR of +-1 activations in hardware)."""

    kernel: int


@dataclass
class HeadStage:
    """Software classifier head: binary weights, real logits, BN affine."""

    weight: np.ndarray  # +-1, (out, in)
    alpha: np.ndarray
    gamma: np.ndarray
    beta: np.ndarray
    mean: np.ndarray
    var: np.ndarray
    eps: float

    def logits(self, x: np.ndarray) -> np.ndarray:
        y = (x @ self.weight.T) * self.alpha
        std = np.sqrt(self.var + self.eps)
        return self.gamma * (y - self.mean) / std + self.beta


Stage = Union[SignStage, ThermometerStage, LinearStage, ConvStage, PoolStage, HeadStage]


def _compile_cell_matrix(
    weights_matrix: np.ndarray,
    alpha: np.ndarray,
    bn,
    config: HardwareConfig,
    seed,
) -> TiledLinearLayer:
    """Shared Eq. 15/16 handling for FC and lowered conv cells."""
    match = match_batch_norm(
        gamma=bn.weight.data,
        beta=bn.bias.data,
        mean=bn.running_mean,
        var=bn.running_var,
        alpha=alpha,
        eps=bn.eps,
        unit_current_ua=config.unit_current_ua,
    )
    w = weights_matrix.copy()
    thresholds = match.threshold_currents_ua.copy()
    # Eq. 15: negative-slope channels invert — negate column + threshold.
    w[:, match.flip] = -w[:, match.flip]
    thresholds[match.flip] = -thresholds[match.flip]
    return TiledLinearLayer(config, w, threshold_ua=thresholds, seed=seed)


class CompiledNetwork:
    """Executable hardware pipeline produced by :func:`compile_model`."""

    def __init__(self, stages: List[Stage], config: HardwareConfig) -> None:
        self.stages = stages
        self.config = config

    @property
    def tiled_layers(self) -> List[TiledLinearLayer]:
        return [
            s.layer for s in self.stages if isinstance(s, (LinearStage, ConvStage))
        ]

    # Execution lives in repro.mapping.executor (kept separate so the
    # compiler has no runtime dependencies); re-exported here for
    # ergonomics.
    def forward(self, images: np.ndarray, mode: str = "stochastic") -> np.ndarray:
        from repro.mapping.executor import run_network

        return run_network(self, images, mode=mode)

    def predict(self, images: np.ndarray, mode: str = "stochastic") -> np.ndarray:
        return self.forward(images, mode=mode).argmax(axis=1)


def compile_model(
    model,
    config: Optional[HardwareConfig] = None,
    seed: SeedLike = 0,
) -> CompiledNetwork:
    """Compile a trained :class:`Mlp` or :class:`VggSmall` to hardware.

    ``config`` defaults to the hardware the model was trained against
    (``model.hardware``); override it to study train/deploy mismatch.
    """
    config = config or model.hardware
    rng = new_rng(seed)
    stages: List[Stage] = []

    if isinstance(model, Mlp):
        cells = list(model.cells)
    elif isinstance(model, VggSmall):
        cells = list(model.features)
    else:
        raise TypeError(
            f"unsupported model type {type(model).__name__}; "
            "compile_model handles Mlp and VggSmall"
        )

    front = model.input_binarize
    if isinstance(front, ThermometerEncode):
        stages.append(ThermometerStage(thresholds=front.thresholds.copy()))
    elif isinstance(front, InputBinarize):
        stages.append(SignStage())
    else:  # pragma: no cover - defensive
        raise TypeError(f"unknown input stage {type(front).__name__}")

    seeds = spawn_rng(rng, len(cells) + 1)
    for cell, cell_seed in zip(cells, seeds):
        if isinstance(cell, RandomizedBinaryLinear):
            wb = np.where(cell.weight.data >= 0, 1.0, -1.0).T  # (in, out)
            layer = _compile_cell_matrix(
                wb, cell.alpha.data, cell.bn, config, cell_seed
            )
            stages.append(LinearStage(layer=layer))
        elif isinstance(cell, RandomizedBinaryConv2d):
            wb = np.where(cell.weight.data >= 0, 1.0, -1.0)
            matrix = conv_weight_to_matrix(wb)
            layer = _compile_cell_matrix(
                matrix, cell.alpha.data, cell.bn, config, cell_seed
            )
            stages.append(
                ConvStage(
                    layer=layer,
                    kernel=cell.kernel_size,
                    stride=cell.stride,
                    padding=cell.padding,
                    out_channels=cell.out_channels,
                )
            )
        elif type(cell).__name__ == "MaxPool2d":
            stages.append(PoolStage(kernel=cell.kernel_size))
        else:
            raise TypeError(f"cannot compile cell {type(cell).__name__}")

    head: BinaryLinear = model.head
    stages.append(
        HeadStage(
            weight=np.where(head.weight.data >= 0, 1.0, -1.0),
            alpha=head.alpha.data.copy(),
            gamma=head.bn.weight.data.copy(),
            beta=head.bn.bias.data.copy(),
            mean=head.bn.running_mean.copy(),
            var=head.bn.running_var.copy(),
            eps=head.bn.eps,
        )
    )
    return CompiledNetwork(stages, config)
