"""Deprecated free-function executor — thin shims over :mod:`repro.api`.

The original inference surface (``run_network`` / ``evaluate_accuracy``
/ ``network_workloads`` over a :class:`CompiledNetwork`) now delegates
to the unified :class:`repro.api.Engine`. New code should use the
engine directly::

    from repro.api import Engine

    engine = Engine(network)                  # or Engine.from_model(model)
    result = engine.run(images, labels=labels, backend="ideal")

The shims are kept so existing callers and the seed test-suite keep
working unchanged: ``mode="ideal"`` maps to the ``"ideal"`` backend
(bit-for-bit identical output) and ``mode="stochastic"`` to the
``"stochastic"`` backend (the same hardware-default dispatch the legacy
executor used). ``_run_pool`` re-exports the pooling kernel (now owned
by :mod:`repro.runtime.plan`, re-exported through the engine facade)
for the tests that poke it directly.
"""

from __future__ import annotations

from typing import List

import numpy as np  # noqa: F401  (the public np.ndarray annotations)

from repro.hardware.cost import LayerWorkload
from repro.mapping.compiler import CompiledNetwork

_MODES = ("stochastic", "ideal")
_MODE_BACKENDS = {"stochastic": "stochastic", "ideal": "ideal"}


def _check_mode(mode: str) -> str:
    if mode not in _MODES:
        raise ValueError(f"mode must be one of {_MODES}, got {mode!r}")
    return _MODE_BACKENDS[mode]


def _run_pool(stage, x: np.ndarray) -> np.ndarray:
    """Deprecated alias of the engine's pooling kernel."""
    from repro.api.engine import _run_pool as pool

    return pool(stage, x)


def run_network(
    network: CompiledNetwork, images: np.ndarray, mode: str = "stochastic"
) -> np.ndarray:
    """Run a batch of images; returns logits (N, n_classes).

    .. deprecated:: use :meth:`repro.api.Engine.run` (structured
       results, pluggable backends, micro-batching).
    """
    from repro.api import Engine

    backend = _check_mode(mode)
    # micro_batch=None: the legacy executor ran the whole batch in one
    # pass, so the shim must not introduce sharding behind its back.
    return Engine(network, backend=backend, micro_batch=None).run(images).logits


def evaluate_accuracy(
    network: CompiledNetwork,
    images: np.ndarray,
    labels: np.ndarray,
    mode: str = "stochastic",
    batch_size: int = 64,
) -> float:
    """Top-1 accuracy of the compiled network on a labelled set.

    .. deprecated:: use :meth:`repro.api.Engine.evaluate`.
    """
    from repro.api import Engine

    backend = _check_mode(mode)
    # No empty-set special case: InferenceResult.accuracy itself scores
    # a labelled-but-empty request as 0.0, warning-free.
    return Engine(network, backend=backend).evaluate(
        images, labels, batch_size=batch_size
    )


def network_workloads(
    network: CompiledNetwork, image_shape
) -> List[LayerWorkload]:
    """Per-layer :class:`LayerWorkload` records for the cost model.

    .. deprecated:: use :meth:`repro.api.Engine.workloads`.
    """
    from repro.api.results import network_workloads as workloads

    return workloads(network, image_shape)
