"""Hardware-faithful inference over a compiled network.

Two modes:

* ``"stochastic"`` — every crossbar column samples its AQFP buffer over
  the L-bit observation window and the SC accumulation module merges the
  tiles: the deployed behaviour.
* ``"ideal"`` — noise-free sign of the exact pre-activation: must agree
  bit-for-bit with the software model evaluated deterministically (the
  equivalence tests assert this).

Convolutions are executed by im2col: each spatial position becomes one
crossbar pass; positions are folded into the batch dimension for
vectorization. Max pooling of +-1 maps is a digital OR.

Dtype discipline: the executor carries +-1 activation maps as int8 —
im2col preserves the dtype, so the unfolded ``(N*P, fan_in)`` buffers
(the largest allocations of a conv pass) are 8x smaller than float64.
The {-1, 0, +1} alphabet is validated once where untrusted data enters
a crossbar; executor-generated activations are +-1 by construction, so
the per-layer rescan is disabled afterwards.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.autograd.functional import im2col
from repro.hardware.cost import LayerWorkload
from repro.mapping.compiler import (
    CompiledNetwork,
    ConvStage,
    HeadStage,
    LinearStage,
    PoolStage,
    SignStage,
    ThermometerStage,
)
from repro.mapping.tiling import conv_output_geometry

_MODES = ("stochastic", "ideal")

_INT8_ONE = np.int8(1)
_INT8_MINUS_ONE = np.int8(-1)


def _apply_tiled(layer, flat: np.ndarray, mode: str, validate) -> np.ndarray:
    if mode == "stochastic":
        return layer.forward(flat, validate=validate)
    return layer.ideal_output(flat)


def _run_conv(stage: ConvStage, x: np.ndarray, mode: str, validate) -> np.ndarray:
    n, _, h, w = x.shape
    h_out, w_out = conv_output_geometry(h, w, stage.kernel, stage.stride, stage.padding)
    cols, _ = im2col(x, stage.kernel, stage.stride, stage.padding)
    # (N, fan_in, P) -> (N * P, fan_in)
    fan_in = cols.shape[1]
    flat = cols.transpose(0, 2, 1).reshape(-1, fan_in)
    out = _apply_tiled(stage.layer, flat, mode, validate)  # (N*P, C_out)
    out = out.reshape(n, h_out * w_out, stage.out_channels).transpose(0, 2, 1)
    return out.reshape(n, stage.out_channels, h_out, w_out)


def _run_pool(stage: PoolStage, x: np.ndarray) -> np.ndarray:
    n, c, h, w = x.shape
    k = stage.kernel
    if h % k or w % k:
        raise ValueError(f"pooling {k} does not divide spatial dims {(h, w)}")
    view = x.reshape(n, c, h // k, k, w // k, k)
    return view.max(axis=(3, 5))


def run_network(
    network: CompiledNetwork, images: np.ndarray, mode: str = "stochastic"
) -> np.ndarray:
    """Run a batch of images; returns logits (N, n_classes)."""
    if mode not in _MODES:
        raise ValueError(f"mode must be one of {_MODES}, got {mode!r}")
    x = np.asarray(images, dtype=np.float64)
    # Encoding and crossbar stages emit +-1 by construction; once one of
    # them has produced `x`, the crossbar alphabet rescan is redundant.
    trusted = False
    for stage in network.stages:
        if isinstance(stage, SignStage):
            x = np.where(x >= 0, _INT8_ONE, _INT8_MINUS_ONE)
            trusted = True
        elif isinstance(stage, ThermometerStage):
            planes = [
                np.where(x - t >= 0, _INT8_ONE, _INT8_MINUS_ONE)
                for t in stage.thresholds
            ]
            x = np.concatenate(planes, axis=1)
            trusted = True
        elif isinstance(stage, ConvStage):
            x = _run_conv(stage, x, mode, validate=None if not trusted else False)
            x = x.astype(np.int8, copy=False)
            trusted = True
        elif isinstance(stage, LinearStage):
            if x.ndim > 2:
                x = x.reshape(x.shape[0], -1)
            x = _apply_tiled(stage.layer, x, mode, None if not trusted else False)
            x = x.astype(np.int8, copy=False)
            trusted = True
        elif isinstance(stage, PoolStage):
            x = _run_pool(stage, x)
        elif isinstance(stage, HeadStage):
            if x.ndim > 2:
                x = x.reshape(x.shape[0], -1)
            x = stage.logits(x)
        else:  # pragma: no cover - defensive
            raise TypeError(f"unknown stage {type(stage).__name__}")
    return x


def evaluate_accuracy(
    network: CompiledNetwork,
    images: np.ndarray,
    labels: np.ndarray,
    mode: str = "stochastic",
    batch_size: int = 64,
) -> float:
    """Top-1 accuracy of the compiled network on a labelled set."""
    labels = np.asarray(labels)
    correct = 0
    for start in range(0, len(labels), batch_size):
        batch = images[start : start + batch_size]
        pred = network.predict(batch, mode=mode)
        correct += int((pred == labels[start : start + batch_size]).sum())
    return correct / max(len(labels), 1)


def network_workloads(
    network: CompiledNetwork, image_shape
) -> List[LayerWorkload]:
    """Per-layer :class:`LayerWorkload` records for the cost model.

    ``image_shape`` is the (C, H, W) input geometry *before* the input
    encoding stage.
    """
    c, h, w = image_shape
    workloads: List[LayerWorkload] = []
    for stage in network.stages:
        if isinstance(stage, ThermometerStage):
            c = c * len(stage.thresholds)
        elif isinstance(stage, ConvStage):
            h, w = conv_output_geometry(h, w, stage.kernel, stage.stride, stage.padding)
            workloads.append(
                LayerWorkload(
                    in_features=stage.layer.in_features,
                    out_features=stage.layer.out_features,
                    positions=h * w,
                )
            )
            c = stage.out_channels
        elif isinstance(stage, PoolStage):
            h //= stage.kernel
            w //= stage.kernel
        elif isinstance(stage, LinearStage):
            workloads.append(
                LayerWorkload(
                    in_features=stage.layer.in_features,
                    out_features=stage.layer.out_features,
                )
            )
        elif isinstance(stage, HeadStage):
            workloads.append(
                LayerWorkload(
                    in_features=stage.weight.shape[1],
                    out_features=stage.weight.shape[0],
                )
            )
    return workloads
