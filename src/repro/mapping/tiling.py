"""Convolution-to-matrix lowering for crossbar mapping.

A conv layer with +-1 weights ``(C_out, C_in, k, k)`` becomes the matrix
``(C_in * k * k, C_out)`` whose row order matches the im2col unfolding in
:func:`repro.autograd.functional.im2col`, so

    im2col(x)^T @ conv_weight_to_matrix(w) == conv2d(x, w)

position by position. Each output channel is one crossbar column; each
spatial position is one crossbar pass.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np


def conv_weight_to_matrix(weight: np.ndarray) -> np.ndarray:
    """Reshape (C_out, C_in, k, k) conv weights to (C_in*k*k, C_out)."""
    w = np.asarray(weight)
    if w.ndim != 4:
        raise ValueError(f"conv weight must be 4-D, got {w.shape}")
    c_out = w.shape[0]
    return w.reshape(c_out, -1).T.copy()


def conv_output_geometry(
    height: int, width: int, kernel: int, stride: int, padding: int
) -> Tuple[int, int]:
    """(H_out, W_out) of a convolution."""
    if min(height, width, kernel, stride) < 1 or padding < 0:
        raise ValueError("invalid convolution geometry")
    h_out = (height + 2 * padding - kernel) // stride + 1
    w_out = (width + 2 * padding - kernel) // stride + 1
    if h_out < 1 or w_out < 1:
        raise ValueError(
            f"convolution geometry collapses: {(height, width)} k={kernel} "
            f"s={stride} p={padding}"
        )
    return h_out, w_out
