"""Compile trained SupeRBNN models onto the AQFP accelerator.

* :mod:`repro.mapping.tiling` — conv-to-matrix lowering shared by the
  compiler and the cost model.
* :mod:`repro.mapping.compiler` — BN matching (Eq. 16), gamma-flip
  handling (Eq. 15), and tiling into :class:`TiledLinearLayer` grids.
* :mod:`repro.mapping.executor` — hardware-faithful inference over the
  compiled network (stochastic device + SC accumulation), plus an ideal
  noise-free mode that must agree with the software model bit-for-bit.
"""

from repro.mapping.tiling import conv_weight_to_matrix, conv_output_geometry
from repro.mapping.compiler import CompiledNetwork, compile_model
from repro.mapping.executor import evaluate_accuracy, network_workloads

__all__ = [
    "conv_weight_to_matrix",
    "conv_output_geometry",
    "compile_model",
    "CompiledNetwork",
    "evaluate_accuracy",
    "network_workloads",
]
