"""``repro.net`` — the network serving tier.

The ingestion edge in front of the runtime's
:class:`~repro.runtime.daemon.ServingDaemon`::

    clients ──frames──▶ asyncio server ──try_submit──▶ daemon queue
       ▲                                                 │ waves
       └───────────── response frames ◀── futures ───────┘

* :mod:`repro.net.protocol` — the length-prefixed framed wire protocol
  (versioned header, request ids, ndarray payloads, typed error
  frames) with strict decode validation.
* :mod:`repro.net.server` — :class:`NetworkServer`, the asyncio TCP
  front-end with per-connection token-bucket rate limiting and
  in-flight quotas; :class:`ServerThread` runs it from sync code.
* :mod:`repro.net.client` — :class:`NetworkClient` (blocking) and
  :class:`AsyncNetworkClient` (multiplexed asyncio) plus
  :class:`RemoteResult` / :class:`RemoteError`.
* :mod:`repro.net.loadgen` — the multi-client load generator behind
  ``repro serve-bench --clients N --connect``: closed-loop saturation
  probe + paced sweep, p50/p95/p99 latency, ``BENCH_serving.json``
  rows, deterministic per-request seeds for bit-identity verification.
"""

from repro.net.client import AsyncNetworkClient, NetworkClient, RemoteError, RemoteResult
from repro.net.loadgen import (
    LoadPoint,
    RequestRecord,
    percentile,
    run_load_point,
    sweep_load,
)
from repro.net.protocol import (
    DEFAULT_MAX_FRAME_BYTES,
    ERROR,
    PING,
    PONG,
    REQUEST,
    RESPONSE,
    RETRYABLE_CODES,
    VERSION,
    ControlFrame,
    ErrorFrame,
    FrameDecoder,
    FrameTooLarge,
    ProtocolError,
    RequestFrame,
    ResponseFrame,
    decode_payload,
    encode_error,
    encode_ping,
    encode_pong,
    encode_request,
    encode_response,
    parse_header,
)
from repro.net.server import NetworkServer, ServerStats, ServerThread, TokenBucket

__all__ = [
    "VERSION",
    "REQUEST",
    "RESPONSE",
    "ERROR",
    "PING",
    "PONG",
    "DEFAULT_MAX_FRAME_BYTES",
    "RETRYABLE_CODES",
    "RequestFrame",
    "ResponseFrame",
    "ErrorFrame",
    "ControlFrame",
    "FrameDecoder",
    "ProtocolError",
    "FrameTooLarge",
    "encode_request",
    "encode_response",
    "encode_error",
    "encode_ping",
    "encode_pong",
    "decode_payload",
    "parse_header",
    "NetworkServer",
    "ServerThread",
    "ServerStats",
    "TokenBucket",
    "NetworkClient",
    "AsyncNetworkClient",
    "RemoteResult",
    "RemoteError",
    "LoadPoint",
    "RequestRecord",
    "run_load_point",
    "sweep_load",
    "percentile",
]
