"""``repro.net`` — the network serving tier.

The ingestion edge in front of the runtime's
:class:`~repro.runtime.daemon.ServingDaemon`::

    clients ──frames──▶ asyncio server ──try_submit──▶ router ──▶ replica daemons
       ▲                                                │ waves
       └── response / PARTIAL / PROGRESS frames ◀───────┘

* :mod:`repro.net.protocol` — the length-prefixed framed wire protocol
  (versioned header, request ids, ndarray payloads, typed error
  frames, opt-in streaming kinds) with strict decode validation.
  Documented in ``docs/PROTOCOL.md``.
* :mod:`repro.net.server` — :class:`NetworkServer`, the asyncio TCP
  front-end with per-connection token-bucket rate limiting, in-flight
  quotas, and streamed (PROGRESS/PARTIAL) delivery;
  :class:`ServerThread` runs it from sync code.
* :mod:`repro.net.router` — :class:`DaemonRouter`, seed-sticky routing
  over N daemon replicas with spillover, classified failover, health
  eviction, and probe-driven re-admission. Duck-types the daemon
  surface, so the server sits over either.
* :mod:`repro.net.client` — :class:`NetworkClient` (blocking) and
  :class:`AsyncNetworkClient` (multiplexed asyncio) plus
  :class:`RemoteResult` / :class:`RemoteError` and the
  ``infer_stream`` consumers.
* :mod:`repro.net.loadgen` — the multi-client load generator behind
  ``repro serve-bench --clients N --connect``: closed-loop saturation
  probe + paced sweep, p50/p95/p99 latency, ``BENCH_serving.json``
  rows, deterministic per-request seeds for bit-identity verification.
"""

from repro.net.client import (
    AsyncNetworkClient,
    NetworkClient,
    RemoteError,
    RemoteResult,
    StreamPartial,
    StreamProgress,
)
from repro.net.loadgen import (
    LoadPoint,
    RequestRecord,
    percentile,
    run_load_point,
    sweep_load,
)
from repro.net.protocol import (
    DEFAULT_MAX_FRAME_BYTES,
    ERROR,
    PARTIAL,
    PING,
    PONG,
    PROGRESS,
    REQUEST,
    RESPONSE,
    RETRYABLE_CODES,
    VERSION,
    ControlFrame,
    ErrorFrame,
    FrameDecoder,
    FrameTooLarge,
    PartialFrame,
    ProgressFrame,
    ProtocolError,
    RequestFrame,
    ResponseFrame,
    decode_payload,
    encode_error,
    encode_partial,
    encode_ping,
    encode_pong,
    encode_progress,
    encode_request,
    encode_response,
    parse_header,
)
from repro.net.router import DaemonRouter, ReplicaHandle, RouterStats
from repro.net.server import NetworkServer, ServerStats, ServerThread, TokenBucket

__all__ = [
    "VERSION",
    "REQUEST",
    "RESPONSE",
    "ERROR",
    "PING",
    "PONG",
    "PROGRESS",
    "PARTIAL",
    "DEFAULT_MAX_FRAME_BYTES",
    "RETRYABLE_CODES",
    "RequestFrame",
    "ResponseFrame",
    "ErrorFrame",
    "ControlFrame",
    "ProgressFrame",
    "PartialFrame",
    "FrameDecoder",
    "ProtocolError",
    "FrameTooLarge",
    "encode_request",
    "encode_response",
    "encode_error",
    "encode_ping",
    "encode_pong",
    "encode_progress",
    "encode_partial",
    "decode_payload",
    "parse_header",
    "NetworkServer",
    "ServerThread",
    "ServerStats",
    "TokenBucket",
    "DaemonRouter",
    "ReplicaHandle",
    "RouterStats",
    "NetworkClient",
    "AsyncNetworkClient",
    "RemoteResult",
    "RemoteError",
    "StreamProgress",
    "StreamPartial",
    "LoadPoint",
    "RequestRecord",
    "run_load_point",
    "sweep_load",
    "percentile",
]
