"""Sync and async clients for the network serving tier.

:class:`NetworkClient` is the blocking client: one socket, framed
requests out, framed responses back, with optional pipelining (send
several requests, then collect) — the load generator's workhorse.
:class:`AsyncNetworkClient` multiplexes many in-flight requests over
one connection inside an asyncio application: every ``infer`` call gets
its own request id and awaits its own response while a single reader
task dispatches frames as they arrive (responses may come back out of
order; the id match makes that safe).

Server-side failures surface as :class:`RemoteError` carrying the wire
error code and its retryable flag — ``queue-full`` / ``rate-limited`` /
``quota-exceeded`` mean *back off and resend*, ``bad-request`` means
the payload can never execute.
"""

from __future__ import annotations

import asyncio
import socket
import time
from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from repro.net import protocol


class RemoteError(RuntimeError):
    """A wire-level error frame, raised client-side.

    ``code`` is one of the :mod:`repro.net.protocol` error codes;
    ``retryable`` mirrors the server's classification.
    """

    def __init__(
        self, code: str, message: str, *, retryable: bool, request_id: int = 0
    ) -> None:
        super().__init__(f"[{code}] {message}")
        self.code = code
        self.retryable = retryable
        self.request_id = request_id


@dataclass
class RemoteResult:
    """One resolved remote request: logits + the flat wire summary."""

    request_id: int
    logits: np.ndarray
    summary: Dict = field(default_factory=dict)

    @property
    def predictions(self) -> np.ndarray:
        return self.logits.argmax(axis=1)

    @property
    def accuracy(self) -> Optional[float]:
        value = self.summary.get("accuracy")
        return None if value is None else float(value)


def _frame_to_result(frame: protocol.Frame) -> RemoteResult:
    if isinstance(frame, protocol.ErrorFrame):
        raise RemoteError(
            frame.code,
            frame.message,
            retryable=frame.retryable,
            request_id=frame.request_id,
        )
    if not isinstance(frame, protocol.ResponseFrame):
        raise protocol.ProtocolError(
            f"expected a RESPONSE or ERROR frame, got kind {frame.kind}"
        )
    return RemoteResult(
        request_id=frame.request_id,
        logits=np.array(frame.logits),  # own the buffer past the frame
        summary=dict(frame.summary),
    )


class NetworkClient:
    """Blocking client for one server connection.

    ``infer`` is the simple request/response call; ``send`` +
    ``recv`` decouple the two halves so a caller can keep several
    requests in flight on one connection (responses arrive in the
    server's completion order — match on ``request_id``).
    """

    def __init__(
        self,
        host: str,
        port: int,
        *,
        timeout: Optional[float] = 60.0,
        max_frame_bytes: int = protocol.DEFAULT_MAX_FRAME_BYTES,
    ) -> None:
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self._decoder = protocol.FrameDecoder(max_frame_bytes=max_frame_bytes)
        self._ready: list = []  # decoded frames not yet handed out
        self._next_id = 1
        self._closed = False

    # ------------------------------------------------------------------
    def send(
        self,
        images: np.ndarray,
        labels: Optional[np.ndarray] = None,
        *,
        seed: Optional[int] = None,
    ) -> int:
        """Ship one request frame; returns its request id."""
        if self._closed:
            raise RuntimeError("client is closed")
        request_id = self._next_id
        self._next_id += 1
        self._sock.sendall(
            protocol.encode_request(request_id, images, labels, seed=seed)
        )
        return request_id

    def recv(self) -> RemoteResult:
        """Block for the next response frame (any request id); raises
        :class:`RemoteError` if it is an error frame."""
        while not self._ready:
            data = self._sock.recv(65536)
            if not data:
                raise ConnectionError("server closed the connection")
            self._ready.extend(self._decoder.feed(data))
        return _frame_to_result(self._ready.pop(0))

    def infer(
        self,
        images: np.ndarray,
        labels: Optional[np.ndarray] = None,
        *,
        seed: Optional[int] = None,
    ) -> RemoteResult:
        """One request, one response (the common synchronous call)."""
        request_id = self.send(images, labels, seed=seed)
        result = self.recv()
        if result.request_id != request_id:
            raise protocol.ProtocolError(
                f"response id {result.request_id} does not match the "
                f"pipelined request id {request_id}; use send/recv for "
                f"overlapping requests"
            )
        return result

    def ping(self) -> float:
        """Round-trip a PING; returns the RTT in seconds."""
        request_id = self._next_id
        self._next_id += 1
        start = time.perf_counter()
        self._sock.sendall(protocol.encode_ping(request_id))
        while True:
            data = self._sock.recv(65536)
            if not data:
                raise ConnectionError("server closed the connection")
            for frame in self._decoder.feed(data):
                if (
                    isinstance(frame, protocol.ControlFrame)
                    and frame.kind == protocol.PONG
                    and frame.request_id == request_id
                ):
                    return time.perf_counter() - start
                self._ready.append(frame)

    # ------------------------------------------------------------------
    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        try:
            self._sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        self._sock.close()

    def __enter__(self) -> "NetworkClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class AsyncNetworkClient:
    """Asyncio client multiplexing in-flight requests over one socket.

    ::

        client = await AsyncNetworkClient.connect(host, port)
        results = await asyncio.gather(
            *(client.infer(batch, seed=i) for i, batch in enumerate(batches))
        )
        await client.aclose()
    """

    def __init__(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        *,
        max_frame_bytes: int = protocol.DEFAULT_MAX_FRAME_BYTES,
    ) -> None:
        self._reader = reader
        self._writer = writer
        self._max_frame_bytes = max_frame_bytes
        self._pending: Dict[int, asyncio.Future] = {}
        self._next_id = 1
        self._closed = False
        self._reader_task = asyncio.get_running_loop().create_task(self._read_loop())

    @classmethod
    async def connect(
        cls,
        host: str,
        port: int,
        *,
        max_frame_bytes: int = protocol.DEFAULT_MAX_FRAME_BYTES,
    ) -> "AsyncNetworkClient":
        reader, writer = await asyncio.open_connection(host, port)
        return cls(reader, writer, max_frame_bytes=max_frame_bytes)

    async def _read_loop(self) -> None:
        try:
            while True:
                header = await self._reader.readexactly(protocol.HEADER.size)
                kind, payload_len, request_id = protocol.parse_header(
                    header, max_frame_bytes=self._max_frame_bytes
                )
                payload = (
                    await self._reader.readexactly(payload_len)
                    if payload_len
                    else b""
                )
                frame = protocol.decode_payload(kind, request_id, payload)
                future = self._pending.pop(request_id, None)
                if future is None or future.done():
                    continue  # late response for an abandoned request
                try:
                    future.set_result(_frame_to_result(frame))
                except RemoteError as exc:
                    future.set_exception(exc)
        except (
            asyncio.IncompleteReadError,
            ConnectionResetError,
            BrokenPipeError,
            asyncio.CancelledError,
        ) as exc:
            self._fail_pending(ConnectionError(f"connection lost: {exc!r}"))
        except protocol.ProtocolError as exc:
            self._fail_pending(exc)

    def _fail_pending(self, exc: BaseException) -> None:
        pending, self._pending = self._pending, {}
        for future in pending.values():
            if not future.done():
                future.set_exception(exc)

    async def infer(
        self,
        images: np.ndarray,
        labels: Optional[np.ndarray] = None,
        *,
        seed: Optional[int] = None,
    ) -> RemoteResult:
        if self._closed:
            raise RuntimeError("client is closed")
        request_id = self._next_id
        self._next_id += 1
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        self._pending[request_id] = future
        self._writer.write(
            protocol.encode_request(request_id, images, labels, seed=seed)
        )
        await self._writer.drain()
        return await future

    async def aclose(self) -> None:
        if self._closed:
            return
        self._closed = True
        self._reader_task.cancel()
        try:
            await self._reader_task
        except asyncio.CancelledError:
            pass
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError, OSError):
            pass
