"""Sync and async clients for the network serving tier.

:class:`NetworkClient` is the blocking client: one socket, framed
requests out, framed responses back, with optional pipelining (send
several requests, then collect) — the load generator's workhorse.
:class:`AsyncNetworkClient` multiplexes many in-flight requests over
one connection inside an asyncio application: every ``infer`` call gets
its own request id and awaits its own response while a single reader
task dispatches frames as they arrive (responses may come back out of
order; the id match makes that safe).

Both clients can consume **streamed** responses: ``infer_stream``
(a generator on the sync client, an async generator on the asyncio
client) opts the request in with ``stream=True`` and yields
:class:`StreamProgress` lifecycle events and :class:`StreamPartial`
row-slices as they arrive, finishing with the fully reassembled
:class:`RemoteResult` — validated for contiguity (each slice's
``offset``/``seq`` must continue the previous one) and byte-identical
to what a plain ``infer`` would have returned.

Server-side failures surface as :class:`RemoteError` carrying the wire
error code and its retryable flag — ``queue-full`` / ``rate-limited`` /
``quota-exceeded`` mean *back off and resend*, ``bad-request`` means
the payload can never execute.
"""

from __future__ import annotations

import asyncio
import socket
import time
from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from repro.net import protocol


class RemoteError(RuntimeError):
    """A wire-level error frame, raised client-side.

    ``code`` is one of the :mod:`repro.net.protocol` error codes;
    ``retryable`` mirrors the server's classification.
    """

    def __init__(
        self, code: str, message: str, *, retryable: bool, request_id: int = 0
    ) -> None:
        super().__init__(f"[{code}] {message}")
        self.code = code
        self.retryable = retryable
        self.request_id = request_id


@dataclass
class RemoteResult:
    """One resolved remote request: logits + the flat wire summary."""

    request_id: int
    logits: np.ndarray
    summary: Dict = field(default_factory=dict)

    @property
    def predictions(self) -> np.ndarray:
        return self.logits.argmax(axis=1)

    @property
    def accuracy(self) -> Optional[float]:
        value = self.summary.get("accuracy")
        return None if value is None else float(value)


@dataclass
class StreamProgress:
    """A streamed lifecycle marker: the request hit ``stage``
    (``queued`` / ``planned`` / ``executing``) server-side."""

    request_id: int
    stage: str
    detail: Dict = field(default_factory=dict)


@dataclass
class StreamPartial:
    """One contiguous row-slice of a streamed response (rows
    ``offset .. offset + len(logits)`` of the full logits)."""

    request_id: int
    logits: np.ndarray
    offset: int
    seq: int
    last: bool = False


class _StreamAssembler:
    """Shared sync/async stream consumer: turns the wire frames of one
    streamed request into events, validating slice contiguity, and
    reassembles the final :class:`RemoteResult`.

    :meth:`feed` returns a :class:`StreamProgress`, a
    :class:`StreamPartial`, the final :class:`RemoteResult` (assembly
    complete), or ``None`` (frame consumed, nothing to surface);
    it raises :class:`RemoteError` for error frames and
    :class:`~repro.net.protocol.ProtocolError` for stream violations.
    """

    def __init__(self, request_id: int) -> None:
        self.request_id = request_id
        self._parts: list = []
        self._rows = 0
        self._seq = 0

    def feed(self, frame: protocol.Frame):
        if frame.request_id != self.request_id:
            raise protocol.ProtocolError(
                f"stream assembler for request {self.request_id} was fed "
                f"a frame for request {frame.request_id}"
            )
        if isinstance(frame, protocol.ErrorFrame):
            raise RemoteError(
                frame.code,
                frame.message,
                retryable=frame.retryable,
                request_id=frame.request_id,
            )
        if isinstance(frame, protocol.ProgressFrame):
            return StreamProgress(
                request_id=frame.request_id,
                stage=frame.stage,
                detail=dict(frame.detail),
            )
        if isinstance(frame, protocol.ResponseFrame):
            # A non-streaming server (or proxy) answered plainly; a
            # whole response is a degenerate one-slice stream.
            if self._parts:
                raise protocol.ProtocolError(
                    "plain RESPONSE arrived mid-stream after "
                    f"{len(self._parts)} partial slices"
                )
            return _frame_to_result(frame)
        if not isinstance(frame, protocol.PartialFrame):
            raise protocol.ProtocolError(
                f"unexpected frame kind {frame.kind} in a response stream"
            )
        if frame.seq != self._seq:
            raise protocol.ProtocolError(
                f"stream slice out of order: got seq {frame.seq}, "
                f"expected {self._seq}"
            )
        if frame.offset != self._rows:
            raise protocol.ProtocolError(
                f"stream slice not contiguous: got offset {frame.offset}, "
                f"expected {self._rows}"
            )
        logits = np.array(frame.logits)  # own the buffer past the frame
        self._parts.append(logits)
        self._rows += logits.shape[0] if logits.ndim else 0
        self._seq += 1
        if not frame.last:
            return StreamPartial(
                request_id=frame.request_id,
                logits=logits,
                offset=frame.offset,
                seq=frame.seq,
                last=False,
            )
        full = (
            np.concatenate(self._parts, axis=0)
            if len(self._parts) > 1
            else self._parts[0]
        )
        return RemoteResult(
            request_id=self.request_id,
            logits=full,
            summary=dict(frame.summary),
        )


def _frame_to_result(frame: protocol.Frame) -> RemoteResult:
    if isinstance(frame, protocol.ErrorFrame):
        raise RemoteError(
            frame.code,
            frame.message,
            retryable=frame.retryable,
            request_id=frame.request_id,
        )
    if not isinstance(frame, protocol.ResponseFrame):
        raise protocol.ProtocolError(
            f"expected a RESPONSE or ERROR frame, got kind {frame.kind}"
        )
    return RemoteResult(
        request_id=frame.request_id,
        logits=np.array(frame.logits),  # own the buffer past the frame
        summary=dict(frame.summary),
    )


class NetworkClient:
    """Blocking client for one server connection.

    ``infer`` is the simple request/response call; ``send`` +
    ``recv`` decouple the two halves so a caller can keep several
    requests in flight on one connection (responses arrive in the
    server's completion order — match on ``request_id``).
    """

    def __init__(
        self,
        host: str,
        port: int,
        *,
        timeout: Optional[float] = 60.0,
        max_frame_bytes: int = protocol.DEFAULT_MAX_FRAME_BYTES,
    ) -> None:
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self._decoder = protocol.FrameDecoder(max_frame_bytes=max_frame_bytes)
        self._ready: list = []  # decoded frames not yet handed out
        self._next_id = 1
        self._closed = False

    # ------------------------------------------------------------------
    def send(
        self,
        images: np.ndarray,
        labels: Optional[np.ndarray] = None,
        *,
        seed: Optional[int] = None,
        stream: bool = False,
    ) -> int:
        """Ship one request frame; returns its request id.
        ``stream=True`` opts in to a streamed response — consume it
        with :meth:`infer_stream` / :meth:`infer_streamed` rather than
        :meth:`recv`."""
        if self._closed:
            raise RuntimeError("client is closed")
        request_id = self._next_id
        self._next_id += 1
        self._sock.sendall(
            protocol.encode_request(request_id, images, labels, seed=seed, stream=stream)
        )
        return request_id

    def _read_frame(self) -> protocol.Frame:
        """The next decoded frame (from the buffer or the socket)."""
        while not self._ready:
            data = self._sock.recv(65536)
            if not data:
                raise ConnectionError("server closed the connection")
            self._ready.extend(self._decoder.feed(data))
        return self._ready.pop(0)

    def recv(self) -> RemoteResult:
        """Block for the next response frame (any request id); raises
        :class:`RemoteError` if it is an error frame."""
        return _frame_to_result(self._read_frame())

    def infer(
        self,
        images: np.ndarray,
        labels: Optional[np.ndarray] = None,
        *,
        seed: Optional[int] = None,
    ) -> RemoteResult:
        """One request, one response (the common synchronous call)."""
        request_id = self.send(images, labels, seed=seed)
        result = self.recv()
        if result.request_id != request_id:
            raise protocol.ProtocolError(
                f"response id {result.request_id} does not match the "
                f"pipelined request id {request_id}; use send/recv for "
                f"overlapping requests"
            )
        return result

    def infer_stream(
        self,
        images: np.ndarray,
        labels: Optional[np.ndarray] = None,
        *,
        seed: Optional[int] = None,
    ):
        """One request, streamed response: a generator yielding
        :class:`StreamProgress` and :class:`StreamPartial` events as
        they arrive, finishing with the reassembled
        :class:`RemoteResult` (always its last item).

        Frames belonging to *other* pipelined requests are buffered for
        their own ``recv`` — but do not run two streams at once on one
        blocking client (their slices would interleave in one buffer;
        use :class:`AsyncNetworkClient` for concurrent streams).
        """
        request_id = self.send(images, labels, seed=seed, stream=True)
        assembler = _StreamAssembler(request_id)
        # Foreign frames are stashed locally, NOT back into
        # self._ready: _read_frame only recv()s when _ready is empty,
        # so re-queueing them there would busy-loop on the same frames
        # while this stream's next frame sits in the socket.
        deferred: list = []
        try:
            while True:
                frame = self._read_frame()
                if frame.request_id != request_id or isinstance(
                    frame, protocol.ControlFrame
                ):
                    deferred.append(frame)
                    continue
                event = assembler.feed(frame)
                if event is None:
                    continue
                yield event
                if isinstance(event, RemoteResult):
                    return
        finally:
            # Splice deferred frames back in arrival order (they were
            # popped from the front of _ready / the socket before
            # anything still sitting in _ready) so recv() sees them.
            if deferred:
                self._ready[:0] = deferred

    def infer_streamed(
        self,
        images: np.ndarray,
        labels: Optional[np.ndarray] = None,
        *,
        seed: Optional[int] = None,
        on_event=None,
    ) -> RemoteResult:
        """Drain :meth:`infer_stream` to completion and return the
        reassembled result; ``on_event`` (if given) observes every
        intermediate :class:`StreamProgress` / :class:`StreamPartial`."""
        for event in self.infer_stream(images, labels, seed=seed):
            if isinstance(event, RemoteResult):
                return event
            if on_event is not None:
                on_event(event)
        raise protocol.ProtocolError(
            "stream ended without a final result"
        )  # pragma: no cover - infer_stream always ends with a result

    def ping(self) -> float:
        """Round-trip a PING; returns the RTT in seconds."""
        request_id = self._next_id
        self._next_id += 1
        start = time.perf_counter()
        self._sock.sendall(protocol.encode_ping(request_id))
        while True:
            data = self._sock.recv(65536)
            if not data:
                raise ConnectionError("server closed the connection")
            for frame in self._decoder.feed(data):
                if (
                    isinstance(frame, protocol.ControlFrame)
                    and frame.kind == protocol.PONG
                    and frame.request_id == request_id
                ):
                    return time.perf_counter() - start
                self._ready.append(frame)

    # ------------------------------------------------------------------
    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        try:
            self._sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        self._sock.close()

    def __enter__(self) -> "NetworkClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class AsyncNetworkClient:
    """Asyncio client multiplexing in-flight requests over one socket.

    ::

        client = await AsyncNetworkClient.connect(host, port)
        results = await asyncio.gather(
            *(client.infer(batch, seed=i) for i, batch in enumerate(batches))
        )
        await client.aclose()
    """

    def __init__(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        *,
        max_frame_bytes: int = protocol.DEFAULT_MAX_FRAME_BYTES,
    ) -> None:
        self._reader = reader
        self._writer = writer
        self._max_frame_bytes = max_frame_bytes
        self._pending: Dict[int, asyncio.Future] = {}
        self._streams: Dict[int, asyncio.Queue] = {}
        self._next_id = 1
        self._closed = False
        self._reader_task = asyncio.get_running_loop().create_task(self._read_loop())

    @classmethod
    async def connect(
        cls,
        host: str,
        port: int,
        *,
        max_frame_bytes: int = protocol.DEFAULT_MAX_FRAME_BYTES,
    ) -> "AsyncNetworkClient":
        reader, writer = await asyncio.open_connection(host, port)
        return cls(reader, writer, max_frame_bytes=max_frame_bytes)

    async def _read_loop(self) -> None:
        try:
            while True:
                header = await self._reader.readexactly(protocol.HEADER.size)
                kind, payload_len, request_id = protocol.parse_header(
                    header, max_frame_bytes=self._max_frame_bytes
                )
                payload = (
                    await self._reader.readexactly(payload_len)
                    if payload_len
                    else b""
                )
                frame = protocol.decode_payload(kind, request_id, payload)
                queue = self._streams.get(request_id)
                if queue is not None:
                    # Streamed request: every frame goes to its
                    # consumer; assembly happens generator-side.
                    queue.put_nowait(frame)
                    continue
                future = self._pending.pop(request_id, None)
                if future is None or future.done():
                    continue  # late response for an abandoned request
                try:
                    future.set_result(_frame_to_result(frame))
                except RemoteError as exc:
                    future.set_exception(exc)
        except (
            asyncio.IncompleteReadError,
            ConnectionResetError,
            BrokenPipeError,
            asyncio.CancelledError,
        ) as exc:
            self._fail_pending(ConnectionError(f"connection lost: {exc!r}"))
        except protocol.ProtocolError as exc:
            self._fail_pending(exc)

    def _fail_pending(self, exc: BaseException) -> None:
        pending, self._pending = self._pending, {}
        for future in pending.values():
            if not future.done():
                future.set_exception(exc)
        streams, self._streams = self._streams, {}
        for queue in streams.values():
            queue.put_nowait(exc)

    async def infer(
        self,
        images: np.ndarray,
        labels: Optional[np.ndarray] = None,
        *,
        seed: Optional[int] = None,
    ) -> RemoteResult:
        if self._closed:
            raise RuntimeError("client is closed")
        request_id = self._next_id
        self._next_id += 1
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        self._pending[request_id] = future
        self._writer.write(
            protocol.encode_request(request_id, images, labels, seed=seed)
        )
        await self._writer.drain()
        return await future

    async def infer_stream(
        self,
        images: np.ndarray,
        labels: Optional[np.ndarray] = None,
        *,
        seed: Optional[int] = None,
    ):
        """One request, streamed response: an async generator yielding
        :class:`StreamProgress` / :class:`StreamPartial` events and
        finally the reassembled :class:`RemoteResult`. Streams
        multiplex like plain ``infer`` calls — any number may run
        concurrently on one connection (the request id routes each
        frame to its own consumer queue)."""
        if self._closed:
            raise RuntimeError("client is closed")
        request_id = self._next_id
        self._next_id += 1
        queue: asyncio.Queue = asyncio.Queue()
        self._streams[request_id] = queue
        assembler = _StreamAssembler(request_id)
        try:
            self._writer.write(
                protocol.encode_request(
                    request_id, images, labels, seed=seed, stream=True
                )
            )
            await self._writer.drain()
            while True:
                frame = await queue.get()
                if isinstance(frame, BaseException):
                    raise frame
                event = assembler.feed(frame)
                if event is None:
                    continue
                yield event
                if isinstance(event, RemoteResult):
                    return
        finally:
            self._streams.pop(request_id, None)

    async def infer_streamed(
        self,
        images: np.ndarray,
        labels: Optional[np.ndarray] = None,
        *,
        seed: Optional[int] = None,
        on_event=None,
    ) -> RemoteResult:
        """Drain :meth:`infer_stream` to completion; returns the
        reassembled result (``on_event`` observes the intermediate
        events)."""
        async for event in self.infer_stream(images, labels, seed=seed):
            if isinstance(event, RemoteResult):
                return event
            if on_event is not None:
                on_event(event)
        raise protocol.ProtocolError(
            "stream ended without a final result"
        )  # pragma: no cover - infer_stream always ends with a result

    async def aclose(self) -> None:
        if self._closed:
            return
        self._closed = True
        self._reader_task.cancel()
        try:
            await self._reader_task
        except asyncio.CancelledError:
            pass
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError, OSError):
            pass
