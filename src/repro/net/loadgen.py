"""Multi-client load generator for the network serving tier.

Drives a running :class:`~repro.net.server.NetworkServer` with ``N``
concurrent client connections and measures what a real client would
measure: per-request wall-clock latency (send to response, queueing
included) and end-to-end throughput. Two load shapes:

* **closed loop** (``offered_rps=None``) — every client fires its next
  request the moment the previous one resolves; the achieved rate *is*
  the saturation throughput for that client count.
* **paced / open loop** (``offered_rps=R``) — request *i* of the sweep
  is scheduled at ``i / R`` seconds; latency then includes any queueing
  the server imposes when offered load approaches saturation, which is
  exactly the p99-vs-load curve the benchmark records.

Every request carries a deterministic explicit seed
(``seed_base + request index``), so each response is reproducible and
bit-identity against an in-process serial
``Session(engine, seed=...).run(images)`` can be asserted after the
run — throughput numbers that silently returned wrong logits are
worthless.

:func:`sweep_load` chains points — a closed-loop saturation probe, then
paced fractions of the measured saturation — into the rows
``serve-bench --clients N`` writes to ``BENCH_serving.json``.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.net.client import NetworkClient, RemoteError

#: Wire error codes the generator counts as shed load (back-pressure),
#: everything else being a failure.
_SHED_CODES = ("queue-full", "rate-limited", "quota-exceeded")


def percentile(values: Sequence[float], q: float) -> float:
    """Nearest-rank percentile (``q`` in [0, 100]); 0.0 when empty."""
    if not values:
        return 0.0
    ordered = sorted(values)
    rank = max(0, min(len(ordered) - 1, int(np.ceil(q / 100.0 * len(ordered))) - 1))
    return float(ordered[rank])


@dataclass
class RequestRecord:
    """One request's outcome, kept for verification and percentiles."""

    index: int  # global sweep index
    seed: int
    pool_index: int  # which pool batch was sent
    latency_s: float = 0.0
    ok: bool = False
    code: str = ""  # wire error code when not ok
    logits: Optional[np.ndarray] = None
    streamed: bool = False  # delivered as reassembled PARTIAL slices


@dataclass
class LoadPoint:
    """Aggregate measurement of one load level."""

    label: str
    clients: int
    offered_rps: float  # 0.0 = closed loop
    n_requests: int
    completed: int = 0
    rejected: int = 0  # retryable wire errors (shed load)
    failed: int = 0  # fatal wire/connection errors
    streamed: int = 0  # completions delivered as PARTIAL streams
    total_images: int = 0
    wall_time_s: float = 0.0
    latencies_s: List[float] = field(default_factory=list)

    @property
    def achieved_rps(self) -> float:
        return self.completed / self.wall_time_s if self.wall_time_s else 0.0

    @property
    def images_per_s(self) -> float:
        return self.total_images / self.wall_time_s if self.wall_time_s else 0.0

    def as_row(self) -> Dict:
        """Flat, fully-populated row (absent values are zeros, never
        missing keys) for ``BENCH_serving.json``."""
        lat = self.latencies_s
        return {
            "label": self.label,
            "clients": int(self.clients),
            "offered_rps": float(self.offered_rps),
            "n_requests": int(self.n_requests),
            "completed": int(self.completed),
            "rejected": int(self.rejected),
            "failed": int(self.failed),
            "streamed": int(self.streamed),
            "total_images": int(self.total_images),
            "wall_time_s": float(self.wall_time_s),
            "achieved_rps": float(self.achieved_rps),
            "images_per_s": float(self.images_per_s),
            "latency_mean_ms": float(np.mean(lat) * 1e3) if lat else 0.0,
            "latency_p50_ms": percentile(lat, 50) * 1e3,
            "latency_p95_ms": percentile(lat, 95) * 1e3,
            "latency_p99_ms": percentile(lat, 99) * 1e3,
            "latency_max_ms": float(max(lat) * 1e3) if lat else 0.0,
        }


def run_load_point(
    host: str,
    port: int,
    *,
    clients: int,
    n_requests: int,
    pool: Sequence[np.ndarray],
    labels_pool: Optional[Sequence[np.ndarray]] = None,
    seed_base: int = 0,
    offered_rps: Optional[float] = None,
    label: Optional[str] = None,
    keep_logits: bool = True,
    timeout: float = 120.0,
    stream_every: int = 0,
) -> Tuple[LoadPoint, List[RequestRecord]]:
    """Run one load level; returns the aggregate point + per-request
    records (in global index order).

    Request ``i`` sends ``pool[i % len(pool)]`` with explicit seed
    ``seed_base + i``; the indices are dealt round-robin to ``clients``
    connections, so the seed assignment is deterministic regardless of
    scheduling. Retryable wire errors (queue-full / rate-limited /
    quota) are counted as shed load, not retried — retrying inside the
    generator would hide the server's back-pressure from the benchmark.

    ``stream_every=k`` (k > 0) requests every k-th request (by global
    index) as a **streamed** response, consumed with
    ``infer_streamed`` and reassembled client-side — so the benchmark
    exercises PARTIAL delivery and the bit-identity verification
    covers reassembled streams too. 0 disables streaming.
    """
    if clients < 1:
        raise ValueError(f"clients must be >= 1, got {clients}")
    if n_requests < 1:
        raise ValueError(f"n_requests must be >= 1, got {n_requests}")
    if not pool:
        raise ValueError("pool of request batches must be non-empty")
    if offered_rps is not None and offered_rps <= 0:
        raise ValueError(f"offered_rps must be > 0 (or None), got {offered_rps}")

    records = [
        RequestRecord(index=i, seed=seed_base + i, pool_index=i % len(pool))
        for i in range(n_requests)
    ]
    barrier = threading.Barrier(clients + 1)
    start_stamp = [0.0]
    interval = None if offered_rps is None else 1.0 / offered_rps

    def _client(worker: int) -> None:
        mine = range(worker, n_requests, clients)
        try:
            client = NetworkClient(host, port, timeout=timeout)
        except OSError:
            barrier.wait()
            for i in mine:
                records[i].code = "connect-failed"
            return
        try:
            barrier.wait()
            for i in mine:
                record = records[i]
                if interval is not None:
                    due = start_stamp[0] + record.index * interval
                    delay = due - time.perf_counter()
                    if delay > 0:
                        time.sleep(delay)
                sent = time.perf_counter()
                streamed = stream_every > 0 and record.index % stream_every == 0
                request_labels = (
                    None if labels_pool is None else labels_pool[record.pool_index]
                )
                try:
                    if streamed:
                        result = client.infer_streamed(
                            pool[record.pool_index],
                            request_labels,
                            seed=record.seed,
                        )
                    else:
                        result = client.infer(
                            pool[record.pool_index],
                            request_labels,
                            seed=record.seed,
                        )
                except RemoteError as exc:
                    record.latency_s = time.perf_counter() - sent
                    record.code = exc.code
                    continue
                except (ConnectionError, OSError) as exc:
                    record.code = f"connection: {exc}"
                    return
                record.latency_s = time.perf_counter() - sent
                record.ok = True
                record.streamed = streamed
                if keep_logits:
                    record.logits = result.logits
        finally:
            client.close()

    threads = [
        threading.Thread(target=_client, args=(w,), daemon=True)
        for w in range(clients)
    ]
    for t in threads:
        t.start()
    barrier.wait()
    start_stamp[0] = time.perf_counter()
    for t in threads:
        t.join()
    wall = time.perf_counter() - start_stamp[0]

    point = LoadPoint(
        label=label
        or ("closed-loop" if offered_rps is None else f"paced-{offered_rps:g}rps"),
        clients=clients,
        offered_rps=0.0 if offered_rps is None else float(offered_rps),
        n_requests=n_requests,
        wall_time_s=wall,
    )
    for record in records:
        if record.ok:
            point.completed += 1
            if record.streamed:
                point.streamed += 1
            point.total_images += int(pool[record.pool_index].shape[0])
            point.latencies_s.append(record.latency_s)
        elif record.code in _SHED_CODES:
            point.rejected += 1
        else:
            point.failed += 1
    return point, records


def sweep_load(
    host: str,
    port: int,
    *,
    clients: int,
    requests_per_point: int,
    pool: Sequence[np.ndarray],
    labels_pool: Optional[Sequence[np.ndarray]] = None,
    seed_base: int = 0,
    load_fractions: Sequence[float] = (0.5, 0.9),
    keep_logits: bool = True,
    stream_every: int = 0,
) -> List[Tuple[LoadPoint, List[RequestRecord]]]:
    """Closed-loop saturation probe, then paced points at fractions of
    the measured saturation rate. Seeds stay globally unique across the
    sweep (each point advances ``seed_base`` by its request count)."""
    points: List[Tuple[LoadPoint, List[RequestRecord]]] = []
    saturation, records = run_load_point(
        host,
        port,
        clients=clients,
        n_requests=requests_per_point,
        pool=pool,
        labels_pool=labels_pool,
        seed_base=seed_base,
        offered_rps=None,
        label="closed-loop",
        keep_logits=keep_logits,
        stream_every=stream_every,
    )
    points.append((saturation, records))
    seed_base += requests_per_point
    rate = saturation.achieved_rps
    for fraction in load_fractions:
        offered = rate * fraction
        if offered <= 0:
            continue
        point, records = run_load_point(
            host,
            port,
            clients=clients,
            n_requests=requests_per_point,
            pool=pool,
            labels_pool=labels_pool,
            seed_base=seed_base,
            offered_rps=offered,
            label=f"paced-{fraction:.2f}x",
            keep_logits=keep_logits,
            stream_every=stream_every,
        )
        points.append((point, records))
        seed_base += requests_per_point
    return points
