"""Length-prefixed framed wire protocol for the network serving tier.

Every message on the wire is one **frame**::

    0      2   3   4        8                16
    +------+---+---+--------+----------------+------------------ ...
    | 'RB' | v | k | length |   request id   |     payload
    +------+---+---+--------+----------------+------------------ ...
     magic  ver kind  u32         u64          `length` bytes

* ``magic`` — the two bytes ``b"RB"``; anything else is a protocol
  violation and the connection is torn down.
* ``v`` — protocol version (currently :data:`VERSION` = 1); a version
  the peer does not speak is rejected with an error frame.
* ``k`` — frame kind: :data:`REQUEST`, :data:`RESPONSE`, :data:`ERROR`,
  :data:`PING`, :data:`PONG`, :data:`PROGRESS`, :data:`PARTIAL`.
* ``length`` — payload byte count (big-endian u32), bounded by
  ``max_frame_bytes``; an oversize length prefix is rejected *before*
  any allocation happens.
* ``request id`` — caller-chosen u64 echoed on the response, so one
  connection can multiplex many in-flight requests.

The payload of a REQUEST/RESPONSE frame is a 4-byte meta length, a
UTF-8 JSON *meta* document, then the raw ndarray bytes back to back in
meta order::

    +----------+-----------------+---------------+---------------+
    | meta len |   meta (JSON)   | array 0 bytes | array 1 bytes |
    +----------+-----------------+---------------+---------------+

Meta describes each array as ``{"name", "dtype", "shape"}``; decode
validates the dtype against a whitelist, the shape against the declared
payload length, and rejects trailing garbage — a malformed frame can
never make a consumer allocate unbounded memory or crash. ERROR frames
carry ``{"code", "message", "retryable"}`` so a client can distinguish
back-off-and-retry conditions (queue full, rate limited) from fatal
ones (malformed request, protocol violation).

**Streaming** is opt-in per request: a REQUEST whose meta carries
``"stream": true`` tells the server it may answer with interleaved
:data:`PROGRESS` frames (meta-only lifecycle markers — ``queued`` /
``planned`` / ``executing``) and a sequence of :data:`PARTIAL` frames,
each carrying a contiguous row-slice of the logits (meta ``{"offset",
"seq", "last"}``; the final slice sets ``"last": true`` and carries the
result summary). Reassembling the partial slices in ``seq`` order
yields byte-for-byte the logits a plain RESPONSE would have carried —
streaming changes delivery, never results. A server never sends
PROGRESS/PARTIAL to a client that did not opt in, which is why these
kinds ride under the same :data:`VERSION`: old clients never see them.
Versioning rule: new *opt-in* frame kinds extend a version; any change
to the header layout or to the meaning of existing kinds bumps
:data:`VERSION` (and the peer rejects a version it does not speak).

The module is deliberately dependency-free (struct + json + numpy):
both the asyncio server and the blocking sync client speak it through
the same :class:`FrameDecoder` incremental state machine.
"""

from __future__ import annotations

import json
import struct
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

import numpy as np

MAGIC = b"RB"
VERSION = 1

#: Frame kinds.
REQUEST = 1
RESPONSE = 2
ERROR = 3
PING = 4
PONG = 5
PROGRESS = 6  # streamed lifecycle marker (meta only; opt-in)
PARTIAL = 7  # streamed row-slice of a response (opt-in)
_KINDS = (REQUEST, RESPONSE, ERROR, PING, PONG, PROGRESS, PARTIAL)

#: magic(2s) version(B) kind(B) payload_len(I) request_id(Q)
HEADER = struct.Struct(">2sBBIQ")
_META_LEN = struct.Struct(">I")

#: Default ceiling on one frame's payload. Large enough for a few
#: thousand MNIST-sized images, small enough that a hostile length
#: prefix cannot balloon a consumer.
DEFAULT_MAX_FRAME_BYTES = 64 * 1024 * 1024

#: ndarray dtypes allowed on the wire (strict decode whitelist).
WIRE_DTYPES = frozenset(
    {
        "float64",
        "float32",
        "int64",
        "int32",
        "int16",
        "int8",
        "uint8",
        "uint16",
        "uint32",
        "uint64",
        "bool",
    }
)

# ----------------------------------------------------------------------
# Error codes carried by ERROR frames.
ERR_QUEUE_FULL = "queue-full"  # daemon admission shed the request
ERR_RATE_LIMITED = "rate-limited"  # client exceeded its token bucket
ERR_QUOTA = "quota-exceeded"  # too many in-flight on one connection
ERR_BAD_REQUEST = "bad-request"  # payload cannot execute (fatal)
ERR_PROTOCOL = "protocol-error"  # framing violation (connection dies)
ERR_CLOSING = "server-closing"  # server is shutting down
ERR_INTERNAL = "internal"  # execution failed server-side

#: Codes a well-behaved client may retry after a back-off.
RETRYABLE_CODES = frozenset({ERR_QUEUE_FULL, ERR_RATE_LIMITED, ERR_QUOTA, ERR_CLOSING})


class ProtocolError(ValueError):
    """A frame that violates the wire protocol. Connection-fatal on the
    decode side: once raised, the stream offset is unrecoverable."""


class FrameTooLarge(ProtocolError):
    """A length prefix beyond ``max_frame_bytes`` — rejected before any
    payload buffering, so a hostile prefix cannot trigger allocation."""


# ----------------------------------------------------------------------
# Decoded frame types.
@dataclass
class RequestFrame:
    """One inference request: a batched image array, optional aligned
    labels, and an optional explicit plan seed (the daemon pins the
    request's shard plan to ``new_rng(seed)``, making the response
    bit-identical to ``Session(engine, seed=seed).run(images)``).
    ``stream=True`` opts in to PROGRESS/PARTIAL delivery."""

    request_id: int
    images: np.ndarray
    labels: Optional[np.ndarray] = None
    seed: Optional[int] = None
    stream: bool = False
    kind: int = REQUEST


@dataclass
class ResponseFrame:
    """One resolved request: logits plus the flat result summary."""

    request_id: int
    logits: np.ndarray
    summary: Dict = field(default_factory=dict)
    kind: int = RESPONSE


@dataclass
class ErrorFrame:
    """A failed request (or connection-level protocol violation)."""

    request_id: int
    code: str
    message: str
    retryable: bool = False
    kind: int = ERROR


@dataclass
class ControlFrame:
    """PING/PONG liveness frames (empty payload)."""

    request_id: int
    kind: int = PING


@dataclass
class ProgressFrame:
    """A streamed lifecycle marker for one in-flight request (sent only
    to clients that requested ``stream=True``)."""

    request_id: int
    stage: str
    detail: Dict = field(default_factory=dict)
    kind: int = PROGRESS


@dataclass
class PartialFrame:
    """One contiguous row-slice of a streamed response. ``offset`` is
    the slice's starting row in the full logits, ``seq`` its 0-based
    position in the stream; the final slice sets ``last=True`` and
    carries the result ``summary`` a plain RESPONSE would have."""

    request_id: int
    logits: np.ndarray
    offset: int
    seq: int
    last: bool = False
    summary: Dict = field(default_factory=dict)
    kind: int = PARTIAL


Frame = Union[
    RequestFrame,
    ResponseFrame,
    ErrorFrame,
    ControlFrame,
    ProgressFrame,
    PartialFrame,
]


# ----------------------------------------------------------------------
# Encoding
def _array_blobs(arrays: List[Tuple[str, np.ndarray]]) -> Tuple[List[dict], List[bytes]]:
    specs: List[dict] = []
    blobs: List[bytes] = []
    for name, array in arrays:
        array = np.ascontiguousarray(array)
        dtype = array.dtype.name
        if dtype not in WIRE_DTYPES:
            raise ProtocolError(f"dtype {dtype!r} is not wire-encodable")
        specs.append({"name": name, "dtype": dtype, "shape": list(array.shape)})
        blobs.append(array.tobytes())
    return specs, blobs


def _encode(kind: int, request_id: int, meta: dict, blobs: List[bytes]) -> bytes:
    meta_bytes = json.dumps(meta, separators=(",", ":")).encode("utf-8")
    payload_len = _META_LEN.size + len(meta_bytes) + sum(len(b) for b in blobs)
    parts = [
        HEADER.pack(MAGIC, VERSION, kind, payload_len, request_id),
        _META_LEN.pack(len(meta_bytes)),
        meta_bytes,
    ]
    parts.extend(blobs)
    return b"".join(parts)


def encode_request(
    request_id: int,
    images: np.ndarray,
    labels: Optional[np.ndarray] = None,
    *,
    seed: Optional[int] = None,
    stream: bool = False,
) -> bytes:
    """Encode one inference request frame. ``stream=True`` opts in to
    PROGRESS/PARTIAL delivery (the key is omitted otherwise, so the
    frame stays byte-identical for non-streaming peers)."""
    arrays = [("images", np.asarray(images))]
    if labels is not None:
        arrays.append(("labels", np.asarray(labels)))
    specs, blobs = _array_blobs(arrays)
    meta = {"seed": None if seed is None else int(seed), "arrays": specs}
    if stream:
        meta["stream"] = True
    return _encode(REQUEST, request_id, meta, blobs)


def encode_response(request_id: int, logits: np.ndarray, summary: dict) -> bytes:
    """Encode one resolved request's response frame."""
    specs, blobs = _array_blobs([("logits", np.asarray(logits))])
    meta = {"summary": dict(summary), "arrays": specs}
    return _encode(RESPONSE, request_id, meta, blobs)


def encode_error(
    request_id: int, code: str, message: str, *, retryable: Optional[bool] = None
) -> bytes:
    """Encode an error frame; ``retryable`` defaults from the code."""
    if retryable is None:
        retryable = code in RETRYABLE_CODES
    meta = {"code": str(code), "message": str(message), "retryable": bool(retryable)}
    return _encode(ERROR, request_id, meta, [])


def encode_progress(request_id: int, stage: str, detail: Optional[dict] = None) -> bytes:
    """Encode a streamed lifecycle marker (meta-only frame)."""
    meta = {"stage": str(stage), "detail": {} if detail is None else dict(detail)}
    return _encode(PROGRESS, request_id, meta, [])


def encode_partial(
    request_id: int,
    logits: np.ndarray,
    *,
    offset: int,
    seq: int,
    last: bool = False,
    summary: Optional[dict] = None,
) -> bytes:
    """Encode one streamed row-slice. The final slice must pass
    ``last=True`` (and should carry the response ``summary``)."""
    if offset < 0 or seq < 0:
        raise ProtocolError(f"partial offset/seq must be >= 0, got {offset}/{seq}")
    specs, blobs = _array_blobs([("logits", np.asarray(logits))])
    meta = {
        "offset": int(offset),
        "seq": int(seq),
        "last": bool(last),
        "arrays": specs,
    }
    if last:
        meta["summary"] = {} if summary is None else dict(summary)
    return _encode(PARTIAL, request_id, meta, blobs)


def encode_ping(request_id: int) -> bytes:
    return HEADER.pack(MAGIC, VERSION, PING, 0, request_id)


def encode_pong(request_id: int) -> bytes:
    return HEADER.pack(MAGIC, VERSION, PONG, 0, request_id)


# ----------------------------------------------------------------------
# Decoding
def parse_header(
    header: bytes, *, max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES
) -> Tuple[int, int, int]:
    """Validate a 16-byte header; returns ``(kind, payload_len,
    request_id)``. Raises :class:`ProtocolError` on a bad magic,
    version, or kind, and :class:`FrameTooLarge` on an oversize length
    prefix — before any payload is read or buffered."""
    if len(header) != HEADER.size:
        raise ProtocolError(
            f"short header: {len(header)} bytes, need {HEADER.size}"
        )
    magic, version, kind, payload_len, request_id = HEADER.unpack(header)
    if magic != MAGIC:
        raise ProtocolError(f"bad magic {magic!r} (want {MAGIC!r})")
    if version != VERSION:
        raise ProtocolError(f"unsupported protocol version {version} (speak {VERSION})")
    if kind not in _KINDS:
        raise ProtocolError(f"unknown frame kind {kind}")
    if payload_len > max_frame_bytes:
        raise FrameTooLarge(
            f"frame payload of {payload_len} bytes exceeds the "
            f"{max_frame_bytes}-byte ceiling"
        )
    if kind in (PING, PONG) and payload_len != 0:
        raise ProtocolError(f"control frame kind {kind} must have an empty payload")
    return kind, payload_len, request_id


def _decode_meta(payload: bytes) -> Tuple[dict, bytes]:
    if len(payload) < _META_LEN.size:
        raise ProtocolError(
            f"payload of {len(payload)} bytes cannot hold a meta length"
        )
    (meta_len,) = _META_LEN.unpack_from(payload)
    body = payload[_META_LEN.size :]
    if meta_len > len(body):
        raise ProtocolError(
            f"meta length {meta_len} exceeds remaining payload ({len(body)} bytes)"
        )
    try:
        meta = json.loads(body[:meta_len].decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"meta is not valid UTF-8 JSON: {exc}") from None
    if not isinstance(meta, dict):
        raise ProtocolError(f"meta must be a JSON object, got {type(meta).__name__}")
    return meta, body[meta_len:]


def _decode_arrays(meta: dict, blob: bytes) -> Dict[str, np.ndarray]:
    specs = meta.get("arrays")
    if not isinstance(specs, list):
        raise ProtocolError("meta 'arrays' must be a list")
    arrays: Dict[str, np.ndarray] = {}
    offset = 0
    for spec in specs:
        if not isinstance(spec, dict):
            raise ProtocolError("array spec must be a JSON object")
        name = spec.get("name")
        dtype = spec.get("dtype")
        shape = spec.get("shape")
        if not isinstance(name, str) or name in arrays:
            raise ProtocolError(f"bad or duplicate array name {name!r}")
        if dtype not in WIRE_DTYPES:
            raise ProtocolError(f"dtype {dtype!r} is not on the wire whitelist")
        if not isinstance(shape, list) or not all(
            isinstance(d, int) and 0 <= d for d in shape
        ):
            raise ProtocolError(f"bad shape {shape!r} for array {name!r}")
        itemsize = np.dtype(dtype).itemsize
        count = 1
        for d in shape:
            count *= d
        nbytes = count * itemsize
        if offset + nbytes > len(blob):
            raise ProtocolError(
                f"array {name!r} declares {nbytes} bytes but only "
                f"{len(blob) - offset} remain in the payload"
            )
        arrays[name] = np.frombuffer(
            blob, dtype=dtype, count=count, offset=offset
        ).reshape(shape)
        offset += nbytes
    if offset != len(blob):
        raise ProtocolError(
            f"{len(blob) - offset} trailing garbage bytes after the declared arrays"
        )
    return arrays


def decode_payload(kind: int, request_id: int, payload: bytes) -> Frame:
    """Decode one validated header's payload into a frame object.

    Raises :class:`ProtocolError` on any structural violation; numpy
    arrays are zero-copy views over the payload buffer (read-only).
    """
    if kind in (PING, PONG):
        return ControlFrame(request_id=request_id, kind=kind)
    meta, blob = _decode_meta(payload)
    if kind == PROGRESS:
        stage, detail = meta.get("stage"), meta.get("detail", {})
        if not isinstance(stage, str):
            raise ProtocolError("progress frame meta needs a string 'stage'")
        if not isinstance(detail, dict):
            raise ProtocolError("progress 'detail' must be a JSON object")
        if blob:
            raise ProtocolError("progress frame must not carry array bytes")
        return ProgressFrame(request_id=request_id, stage=stage, detail=detail)
    if kind == ERROR:
        code, message = meta.get("code"), meta.get("message")
        if not isinstance(code, str) or not isinstance(message, str):
            raise ProtocolError("error frame meta needs string 'code' and 'message'")
        if blob:
            raise ProtocolError("error frame must not carry array bytes")
        return ErrorFrame(
            request_id=request_id,
            code=code,
            message=message,
            retryable=bool(meta.get("retryable", code in RETRYABLE_CODES)),
        )
    arrays = _decode_arrays(meta, blob)
    if kind == REQUEST:
        if "images" not in arrays:
            raise ProtocolError("request frame is missing the 'images' array")
        unknown = set(arrays) - {"images", "labels"}
        if unknown:
            raise ProtocolError(f"request frame has unknown arrays {sorted(unknown)}")
        seed = meta.get("seed")
        if seed is not None and not isinstance(seed, int):
            raise ProtocolError(f"request seed must be an integer, got {seed!r}")
        if seed is not None and not (0 <= seed < 2**63):
            raise ProtocolError(f"request seed {seed} outside [0, 2**63)")
        stream = meta.get("stream", False)
        if not isinstance(stream, bool):
            raise ProtocolError(f"request 'stream' must be a boolean, got {stream!r}")
        return RequestFrame(
            request_id=request_id,
            images=arrays["images"],
            labels=arrays.get("labels"),
            seed=seed,
            stream=stream,
        )
    if kind == PARTIAL:
        if "logits" not in arrays or set(arrays) != {"logits"}:
            raise ProtocolError("partial frame must carry exactly the 'logits' array")
        offset, seq, last = meta.get("offset"), meta.get("seq"), meta.get("last", False)
        if not isinstance(offset, int) or offset < 0:
            raise ProtocolError(f"partial 'offset' must be an int >= 0, got {offset!r}")
        if not isinstance(seq, int) or seq < 0:
            raise ProtocolError(f"partial 'seq' must be an int >= 0, got {seq!r}")
        if not isinstance(last, bool):
            raise ProtocolError(f"partial 'last' must be a boolean, got {last!r}")
        summary = meta.get("summary", {})
        if not isinstance(summary, dict):
            raise ProtocolError("partial summary must be a JSON object")
        return PartialFrame(
            request_id=request_id,
            logits=arrays["logits"],
            offset=offset,
            seq=seq,
            last=last,
            summary=summary,
        )
    # RESPONSE
    if "logits" not in arrays or set(arrays) != {"logits"}:
        raise ProtocolError("response frame must carry exactly the 'logits' array")
    summary = meta.get("summary", {})
    if not isinstance(summary, dict):
        raise ProtocolError("response summary must be a JSON object")
    return ResponseFrame(
        request_id=request_id, logits=arrays["logits"], summary=summary
    )


class FrameDecoder:
    """Incremental frame decoder for a byte stream.

    Feed arbitrarily-chunked bytes; complete frames come back in order.
    Any violation raises :class:`ProtocolError` and poisons the decoder
    — the stream offset is unrecoverable, so the owning connection must
    close (after sending a final error frame, if it is a server).
    """

    def __init__(self, *, max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES) -> None:
        self.max_frame_bytes = int(max_frame_bytes)
        self._buffer = bytearray()
        self._pending: Optional[Tuple[int, int, int]] = None  # validated header
        self._poisoned = False

    def feed(self, data: bytes) -> List[Frame]:
        """Buffer ``data``; return every frame it completes."""
        if self._poisoned:
            raise ProtocolError("decoder is poisoned by an earlier violation")
        self._buffer.extend(data)
        frames: List[Frame] = []
        try:
            while True:
                if self._pending is None:
                    if len(self._buffer) < HEADER.size:
                        break
                    header = bytes(self._buffer[: HEADER.size])
                    del self._buffer[: HEADER.size]
                    self._pending = parse_header(
                        header, max_frame_bytes=self.max_frame_bytes
                    )
                kind, payload_len, request_id = self._pending
                if len(self._buffer) < payload_len:
                    break
                payload = bytes(self._buffer[:payload_len])
                del self._buffer[:payload_len]
                self._pending = None
                frames.append(decode_payload(kind, request_id, payload))
        except ProtocolError:
            self._poisoned = True
            raise
        return frames
