"""Seed-sticky request routing across :class:`ServingDaemon` replicas.

:class:`DaemonRouter` scales the serving tier horizontally: it fans
requests over N replicas — each with its own engine, generator, and
(optionally) warm worker pool — while preserving the tier's defining
property, **bit-identity**. The router presents the same submission
surface as a single daemon (``try_submit`` / ``submit`` / ``stats`` /
``close``), so the asyncio :class:`~repro.net.server.NetworkServer`
sits over a router exactly as it sits over one daemon.

Determinism contract
--------------------
A request's result must not depend on *which* replica served it, or on
how many replicas exist. Two rules make that hold:

* A request with an **explicit seed** can run anywhere: the replica
  pins its shard plan to ``new_rng(seed)``, so its logits are
  bit-identical to ``Session(engine, seed=seed).run(images)`` on any
  replica. Sticky routing (``seed % n_replicas``) keeps equal seeds on
  the same replica for cache affinity, but correctness never depends
  on stickiness — failover to any other replica returns the same bits.
* A **seedless** request on a *seeded* router draws a child seed from
  the router generator in arrival order (one lock-protected draw), and
  that child travels with the request as an explicit seed — so spills
  and failovers replay identically. An unseeded router simply
  round-robins seedless requests (the caller opted out of
  reproducibility, as with an unseeded daemon).

Health, eviction, re-admission
------------------------------
Failures ride the PR 6 recovery taxonomy
(:func:`repro.runtime.recovery.classify`): a replica whose request
fails **retryable** (infrastructure: broken pool, timeout, transport)
is evicted from the rotation and the request is transparently
re-submitted to the next healthy replica — bounded by the replica
count, so a cluster-wide outage still surfaces the original error.
**Fatal** failures (poisoned payloads) propagate to the caller and do
not indict the replica. A background probe thread (interval from
``REPRO_ROUTER_PROBE_INTERVAL_S``) re-admits evicted replicas: when
``probe_images`` are configured it proves recovery with a real seeded
inference first (seeded probes never perturb a replica's generator);
otherwise liveness of the replica's pipeline threads suffices.

``queue-full`` is *not* a health signal: a saturated replica stays in
the rotation and the request **spills** to the next one with room,
which is what lets N replicas absorb N times the admission capacity.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import Future
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.runtime.daemon import DaemonStats, ServingDaemon
from repro.runtime.env import env_float
from repro.runtime.recovery import QueueFull, classify
from repro.utils.rng import SeedLike, new_rng

#: Explicit seed used by health-probe inferences. Probes pin their plan
#: to this seed, so they never consume a replica's generator stream —
#: probing cannot perturb live traffic's randomness.
PROBE_SEED = 0


@dataclass
class RouterStats:
    """Counters of one router's lifetime (snapshot via
    :attr:`DaemonRouter.stats`)."""

    routed: int = 0  # requests admitted through the router
    spillovers: int = 0  # re-routes because a replica's queue was full
    failovers: int = 0  # re-submissions after a retryable failure
    evictions: int = 0  # replicas removed from the rotation
    readmissions: int = 0  # evicted replicas brought back
    probes: int = 0  # health-probe inferences issued
    exhausted: int = 0  # requests that ran out of healthy replicas
    replicas: int = 0  # configured replica count
    healthy_replicas: int = 0  # in the rotation at snapshot time
    per_replica: Dict[str, dict] = field(default_factory=dict)

    def as_dict(self) -> dict:
        payload = dict(self.__dict__)
        payload["per_replica"] = {
            name: dict(stats) for name, stats in self.per_replica.items()
        }
        return payload


@dataclass
class ReplicaHandle:
    """One replica in the rotation: the daemon plus the router's view
    of its health and traffic."""

    daemon: ServingDaemon
    index: int
    name: str
    admitted: bool = True  # in the routing rotation right now
    dispatched: int = 0  # requests this replica accepted
    failures: int = 0  # retryable failures charged to it
    evictions: int = 0
    readmissions: int = 0

    def as_dict(self) -> dict:
        return {
            "name": self.name,
            "index": self.index,
            "admitted": self.admitted,
            "dispatched": self.dispatched,
            "failures": self.failures,
            "evictions": self.evictions,
            "readmissions": self.readmissions,
        }


class _Attempt:
    """Mutable per-request routing state threaded through failover
    callbacks: the payload (so a re-submission is possible) and the
    replicas already tried."""

    __slots__ = ("images", "labels", "seed", "progress", "future", "tried")

    def __init__(self, images, labels, seed, progress, future) -> None:
        self.images = images
        self.labels = labels
        self.seed = seed
        self.progress = progress
        self.future = future
        self.tried: List[int] = []


class DaemonRouter:
    """Route requests across replicas; duck-types the daemon surface.

    Parameters
    ----------
    replicas:
        The :class:`~repro.runtime.daemon.ServingDaemon` replicas to
        route over (at least one). The router *owns* them: its
        :meth:`close` closes each replica.
    seed:
        Seeds the router generator. Seedless requests on a seeded
        router draw an explicit child seed in arrival order, making
        every response replayable on any replica (see the module
        determinism contract). ``None`` round-robins seedless requests
        without pinning them.
    probe_interval_s:
        Seconds between re-admission sweeps over evicted replicas
        (default from ``REPRO_ROUTER_PROBE_INTERVAL_S``, 0.25 s).
    probe_images:
        Optional small batch the probe thread runs (with
        :data:`PROBE_SEED`) to *prove* an evicted replica recovered
        before re-admitting it. ``None`` re-admits on pipeline-thread
        liveness alone.
    """

    def __init__(
        self,
        replicas: Sequence[ServingDaemon],
        *,
        seed: SeedLike = None,
        probe_interval_s: Optional[float] = None,
        probe_images: Optional[np.ndarray] = None,
    ) -> None:
        if not replicas:
            raise ValueError("DaemonRouter needs at least one replica")
        self.replicas: Tuple[ReplicaHandle, ...] = tuple(
            ReplicaHandle(daemon=daemon, index=i, name=daemon.name)
            for i, daemon in enumerate(replicas)
        )
        names = [handle.name for handle in self.replicas]
        if len(set(names)) != len(names):
            raise ValueError(
                f"replica names must be unique, got {names} — construct "
                f"each ServingDaemon with its own name= (or use "
                f"DaemonRouter.build)"
            )
        self._seeded = seed is not None
        self._rng = new_rng(seed)
        self._rr = 0  # round-robin cursor for unpinned requests
        self._lock = threading.Lock()
        self._stats = RouterStats(replicas=len(self.replicas))
        self._closed = False
        self.probe_images = (
            None if probe_images is None else np.asarray(probe_images)
        )
        interval = (
            env_float("REPRO_ROUTER_PROBE_INTERVAL_S", 0.25, minimum=1e-6)
            if probe_interval_s is None
            else float(probe_interval_s)
        )
        if interval <= 0:
            raise ValueError(f"probe_interval_s must be > 0, got {interval}")
        self.probe_interval_s = interval
        self._probe_stop = threading.Event()
        self._probe_thread = threading.Thread(
            target=self._probe_loop, name="repro-router-probe", daemon=True
        )
        self._probe_thread.start()

    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        engines: Sequence,
        *,
        seed: SeedLike = None,
        probe_interval_s: Optional[float] = None,
        probe_images: Optional[np.ndarray] = None,
        **daemon_kwargs,
    ) -> "DaemonRouter":
        """Construct one named daemon per engine (``replica-0`` ...)
        and route over them. ``daemon_kwargs`` go to every
        :class:`~repro.runtime.daemon.ServingDaemon` verbatim."""
        daemons: List[ServingDaemon] = []
        try:
            for i, engine in enumerate(engines):
                daemons.append(
                    ServingDaemon(engine, name=f"replica-{i}", **daemon_kwargs)
                )
        except BaseException:  # taxonomy: fatal — cleanup-and-reraise, never swallowed
            for daemon in daemons:
                daemon.close(drain=False)
            raise
        return cls(
            daemons,
            seed=seed,
            probe_interval_s=probe_interval_s,
            probe_images=probe_images,
        )

    # ------------------------------------------------------------------
    # Submission (the daemon-compatible surface)
    # ------------------------------------------------------------------
    def try_submit(
        self,
        images: np.ndarray,
        labels=None,
        *,
        seed: Optional[int] = None,
        progress: Optional[Callable[[str, dict], None]] = None,
    ) -> Future:
        """Route one request; returns a Future of its
        :class:`~repro.api.results.InferenceResult`.

        Sticky by seed (``seed % n_replicas``), spilling past full
        queues, failing over retryable failures — see the module
        contract. Raises :class:`~repro.runtime.recovery.QueueFull`
        only when *every* healthy replica is at capacity.
        """
        if self._closed:
            raise RuntimeError("cannot submit to a closed DaemonRouter")
        pinned = seed
        if pinned is None and self._seeded:
            with self._lock:
                pinned = int(self._rng.integers(0, 2**63 - 1))
        attempt = _Attempt(images, labels, pinned, progress, Future())
        self._dispatch(attempt, first=True)
        return attempt.future

    # submit is the same path: the router never blocks — a cluster at
    # capacity raises QueueFull regardless of the replicas' own
    # admission policies (blocking a caller on one replica's queue
    # would defeat the spillover).
    submit = try_submit

    def _rotation(self, start: int) -> List[ReplicaHandle]:
        n = len(self.replicas)
        return [self.replicas[(start + i) % n] for i in range(n)]

    def _start_index(self, attempt: _Attempt) -> int:
        if attempt.seed is not None:
            return attempt.seed % len(self.replicas)
        with self._lock:
            self._rr = (self._rr + 1) % len(self.replicas)
            return self._rr

    def _dispatch(self, attempt: _Attempt, *, first: bool) -> None:
        """Submit to the sticky replica, spilling / failing over along
        the rotation. Resolves the attempt's future with QueueFull or
        the last error when the rotation is exhausted."""
        last_exc: Optional[BaseException] = None
        saw_full = False
        for handle in self._rotation(self._start_index(attempt)):
            if not handle.admitted or handle.index in attempt.tried:
                continue
            try:
                future = handle.daemon.try_submit(
                    attempt.images,
                    labels=attempt.labels,
                    seed=attempt.seed,
                    progress=attempt.progress,
                )
            except QueueFull as exc:
                saw_full = True
                last_exc = exc
                with self._lock:
                    self._stats.spillovers += 1
                continue
            except RuntimeError as exc:  # replica closed under us
                last_exc = exc
                self._evict(handle, reason="closed")
                continue
            attempt.tried.append(handle.index)
            with self._lock:
                handle.dispatched += 1
                if first:
                    self._stats.routed += 1
                else:
                    self._stats.failovers += 1
            future.add_done_callback(
                lambda fut, a=attempt, h=handle: self._on_done(a, h, fut)
            )
            return
        # Rotation exhausted without an accepting replica.
        with self._lock:
            self._stats.exhausted += 1
        if saw_full:
            exc: BaseException = QueueFull(
                f"every healthy replica is at capacity "
                f"({len(self.replicas)} replicas)"
            )
        else:
            exc = last_exc or RuntimeError(
                "no healthy replica available "
                f"({len(self.replicas)} configured, all evicted or tried)"
            )
        if first:
            # Synchronous semantics, like a daemon's try_submit: the
            # caller sees QueueFull / RuntimeError at the call site.
            raise exc
        if not attempt.future.done():
            attempt.future.set_exception(exc)

    def _on_done(self, attempt: _Attempt, handle: ReplicaHandle, fut) -> None:
        """Replica future resolved (runs on a daemon consumer thread):
        forward success, fail over retryable infrastructure failures,
        propagate fatal ones."""
        if attempt.future.done():
            fut.exception()  # consume; the attempt was resolved elsewhere
            return
        exc = fut.exception()
        if exc is None:
            attempt.future.set_result(fut.result())
            return
        with self._lock:
            handle.failures += 1
        retryable = isinstance(exc, QueueFull) or classify(exc) == "retryable"
        if not retryable or self._closed:
            attempt.future.set_exception(exc)
            return
        if not isinstance(exc, QueueFull):
            # An accepted request died inside the replica: that is a
            # health signal, not load — take it out of the rotation.
            self._evict(handle, reason=type(exc).__name__)
        if len(attempt.tried) >= len(self.replicas):
            attempt.future.set_exception(exc)
            return
        try:
            self._dispatch(attempt, first=False)
        except QueueFull as spill:
            attempt.future.set_exception(spill)
        # taxonomy: fatal — a dispatch crash resolves the caller's future
        except Exception as unexpected:  # noqa: BLE001 - forwarded to caller
            attempt.future.set_exception(unexpected)

    # ------------------------------------------------------------------
    # Health: eviction and probe-driven re-admission
    # ------------------------------------------------------------------
    def _evict(self, handle: ReplicaHandle, *, reason: str) -> None:
        with self._lock:
            if not handle.admitted:
                return
            handle.admitted = False
            handle.evictions += 1
            self._stats.evictions += 1

    def _readmit(self, handle: ReplicaHandle) -> None:
        with self._lock:
            if handle.admitted:
                return
            handle.admitted = True
            handle.readmissions += 1
            self._stats.readmissions += 1

    def _probe_loop(self) -> None:
        """Background sweep re-admitting recovered replicas. Uses the
        monotonic clock only; exits promptly on close."""
        while not self._probe_stop.wait(self.probe_interval_s):
            for handle in self.replicas:
                if handle.admitted or self._closed:
                    continue
                if not handle.daemon.healthy:
                    continue  # pipeline threads still down
                if self.probe_images is None:
                    self._readmit(handle)
                    continue
                with self._lock:
                    self._stats.probes += 1
                try:
                    probe = handle.daemon.try_submit(
                        self.probe_images, seed=PROBE_SEED
                    )
                    probe.result(timeout=max(1.0, 10 * self.probe_interval_s))
                # taxonomy: retryable — a failed probe just stays evicted
                except Exception:  # noqa: BLE001 - probe failure = not ready
                    continue
                self._readmit(handle)

    # ------------------------------------------------------------------
    # Gauges and stats (the daemon-compatible surface)
    # ------------------------------------------------------------------
    @property
    def healthy(self) -> bool:
        """True while at least one replica is in the rotation."""
        return not self._closed and any(
            handle.admitted and handle.daemon.healthy for handle in self.replicas
        )

    @property
    def queue_depth(self) -> int:
        return sum(handle.daemon.queue_depth for handle in self.replicas)

    @property
    def in_flight(self) -> int:
        return sum(handle.daemon.in_flight for handle in self.replicas)

    @property
    def stats(self) -> RouterStats:
        """Router counters plus every replica's state (daemon counters
        ride under :meth:`aggregate_daemon_stats`)."""
        with self._lock:
            snapshot = RouterStats(**self._stats.as_dict())
        snapshot.healthy_replicas = sum(
            1 for handle in self.replicas if handle.admitted
        )
        snapshot.per_replica = {
            handle.name: handle.as_dict() for handle in self.replicas
        }
        return snapshot

    def aggregate_daemon_stats(self) -> DaemonStats:
        """Element-wise sum of the replicas' counters (gauges summed,
        ``max_wave_requests`` maxed) — the cluster-wide view the bench
        report records alongside :attr:`stats`."""
        total = DaemonStats()
        for handle in self.replicas:
            stats = handle.daemon.stats
            total.submitted += stats.submitted
            total.completed += stats.completed
            total.failed += stats.failed
            total.waves += stats.waves
            total.coalesced_requests += stats.coalesced_requests
            total.max_wave_requests = max(
                total.max_wave_requests, stats.max_wave_requests
            )
            total.total_images += stats.total_images
            total.queue_high_water = max(
                total.queue_high_water, stats.queue_high_water
            )
            total.rejected += stats.rejected
            total.retries += stats.retries
            total.recoveries += stats.recoveries
            total.consumer_restarts += stats.consumer_restarts
            total.queue_depth += stats.queue_depth
            total.in_flight += stats.in_flight
            for mode, waves in stats.mode_waves.items():
                total.mode_waves[mode] = total.mode_waves.get(mode, 0) + waves
        return total

    # ------------------------------------------------------------------
    def drain(self, timeout: Optional[float] = None) -> bool:
        """Wait for every replica to go idle (see
        :meth:`ServingDaemon.drain`)."""
        deadline = None if timeout is None else time.monotonic() + timeout
        for handle in self.replicas:
            remaining = (
                None if deadline is None else max(0.0, deadline - time.monotonic())
            )
            if not handle.daemon.drain(timeout=remaining):
                return False
        return True

    def close(self, *, drain: bool = True, timeout: Optional[float] = None) -> None:
        """Stop the probe thread and close every replica. Idempotent."""
        if self._closed:
            return
        self._closed = True
        self._probe_stop.set()
        self._probe_thread.join(timeout=5.0)
        errors: List[Exception] = []
        for handle in self.replicas:
            try:
                handle.daemon.close(drain=drain, timeout=timeout)
            # taxonomy: fatal — collected so every replica gets closed
            except Exception as exc:  # noqa: BLE001 - re-raised below
                errors.append(exc)
        if errors:
            raise ExceptionGroup(
                f"{len(errors)} of {len(self.replicas)} replica daemons "
                f"failed to close",
                errors,
            )

    def __enter__(self) -> "DaemonRouter":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        admitted = sum(1 for handle in self.replicas if handle.admitted)
        return (
            f"DaemonRouter({len(self.replicas)} replicas, "
            f"{admitted} admitted, seeded={self._seeded})"
        )
