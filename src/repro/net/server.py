"""Asyncio TCP ingestion front-end over a :class:`ServingDaemon`.

:class:`NetworkServer` is the network edge of the serving stack: it
accepts framed requests (:mod:`repro.net.protocol`), polices them with
per-connection token-bucket rate limiting and an in-flight quota, and
bridges each admitted request into the daemon's bounded queue with
:meth:`~repro.runtime.daemon.ServingDaemon.try_submit` — the
*non-blocking* submission path, so a full queue becomes a retryable
``queue-full`` error frame on the wire instead of a stalled event loop.
Resolved futures stream back on their originating connection via a
per-connection outbox task; the daemon's consumer threads resolve
futures off-loop and hand them to the loop with
``call_soon_threadsafe``, so no coroutine ever blocks on
``Future.result()``.

Failure containment mirrors the daemon's: a malformed frame gets a
final ``protocol-error`` frame and the connection closes; a client that
disconnects mid-request abandons only its own responses (counted in
:attr:`ServerStats.disconnected_inflight`); per-request execution
errors come back as error frames classified retryable/fatal by
:mod:`repro.runtime.recovery`. The server itself holds no execution
state — kill it and the daemon keeps draining.

**Streaming** (``stream=True`` on a request frame) interleaves
PROGRESS lifecycle frames — bridged off the daemon's ``progress`` hook
with ``call_soon_threadsafe`` — and delivers the logits as a sequence
of PARTIAL row-slices (``REPRO_STREAM_CHUNK_ROWS`` rows each, the last
one carrying the summary). Reassembled slices are byte-identical to
the plain RESPONSE: streaming changes delivery, never results.

The server is topology-agnostic: ``daemon`` may be a single
:class:`~repro.runtime.daemon.ServingDaemon` or a
:class:`~repro.net.router.DaemonRouter` fanning over N replicas — both
expose the same non-blocking submission surface.

:class:`ServerThread` runs the whole event loop in a background thread
for synchronous contexts (tests, examples, the ``repro serve`` CLI).
"""

from __future__ import annotations

import asyncio
import threading
import time
from dataclasses import dataclass
from typing import Optional, Set, Tuple

import numpy as np

from repro.net import protocol
from repro.runtime.env import env_int
from repro.runtime.recovery import QueueFull, classify

#: Sentinel closing a connection's outbox.
_CLOSE = object()


class TokenBucket:
    """Classic token-bucket rate limiter (monotonic clock).

    ``rate`` tokens refill per second up to ``burst``; :meth:`take`
    consumes one if available. A ``rate`` of None disables limiting.
    """

    def __init__(self, rate: Optional[float], burst: Optional[float] = None) -> None:
        if rate is not None and rate <= 0:
            raise ValueError(f"rate must be > 0 (or None), got {rate}")
        self.rate = rate
        self.burst = float(burst if burst is not None else (rate or 0) * 2 or 1.0)
        if rate is not None and self.burst < 1.0:
            raise ValueError(f"burst must allow at least one token, got {self.burst}")
        self._tokens = self.burst
        self._stamp = time.monotonic()

    def take(self, now: Optional[float] = None) -> bool:
        if self.rate is None:
            return True
        now = time.monotonic() if now is None else now
        self._tokens = min(self.burst, self._tokens + (now - self._stamp) * self.rate)
        self._stamp = now
        if self._tokens >= 1.0:
            self._tokens -= 1.0
            return True
        return False


@dataclass
class ServerStats:
    """Counters of one server's lifetime (snapshot via
    :attr:`NetworkServer.stats`)."""

    connections: int = 0  # accepted, lifetime
    open_connections: int = 0  # live right now
    requests: int = 0  # well-formed request frames received
    responses: int = 0  # response frames written
    errors_sent: int = 0  # error frames written (all codes)
    rejected_queue_full: int = 0  # daemon admission shed the request
    rejected_rate_limited: int = 0  # token bucket said no
    rejected_quota: int = 0  # per-connection in-flight ceiling hit
    bad_requests: int = 0  # payloads the daemon refused (fatal)
    protocol_errors: int = 0  # framing violations (connection died)
    disconnected_inflight: int = 0  # responses dropped: client left early
    streamed_responses: int = 0  # requests answered with PARTIAL slices
    partials_sent: int = 0  # PARTIAL frames written
    progress_sent: int = 0  # PROGRESS frames written

    def as_dict(self) -> dict:
        return dict(self.__dict__)


class _Connection:
    """Per-connection policing + ordered write-back state."""

    def __init__(self, server: "NetworkServer") -> None:
        self.bucket = TokenBucket(server.rate_limit_rps, server.rate_burst)
        self.inflight = 0
        self.closed = False
        self.outbox: asyncio.Queue = asyncio.Queue()

    def send(self, data) -> None:
        """Queue one encoded frame (or deferred encoder) for writing."""
        if not self.closed:
            self.outbox.put_nowait(data)


class NetworkServer:
    """Asyncio TCP server bridging wire requests into a daemon.

    Parameters
    ----------
    daemon:
        The :class:`~repro.runtime.daemon.ServingDaemon` requests are
        submitted to (via its non-blocking ``try_submit``). The server
        does not own it: close order is the caller's business (close
        the server first, then the daemon).
    host / port:
        Listen address; port 0 picks an ephemeral port, readable from
        :attr:`address` after :meth:`start`.
    max_inflight_per_client:
        In-flight request ceiling per connection; beyond it requests
        are refused with a retryable ``quota-exceeded`` error frame.
    rate_limit_rps / rate_burst:
        Per-connection token-bucket rate limit (requests/second and
        burst size). ``None`` disables rate limiting.
    max_frame_bytes:
        Frame payload ceiling enforced before any buffering.
    stream_chunk_rows:
        Rows per PARTIAL frame for streamed responses (default from
        ``REPRO_STREAM_CHUNK_ROWS``, 32). Must be >= 1.
    """

    def __init__(
        self,
        daemon,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        max_inflight_per_client: int = 32,
        rate_limit_rps: Optional[float] = None,
        rate_burst: Optional[float] = None,
        max_frame_bytes: int = protocol.DEFAULT_MAX_FRAME_BYTES,
        stream_chunk_rows: Optional[int] = None,
    ) -> None:
        if max_inflight_per_client < 1:
            raise ValueError(
                f"max_inflight_per_client must be >= 1, got {max_inflight_per_client}"
            )
        self.daemon = daemon
        self.host = host
        self.port = port
        self.max_inflight_per_client = int(max_inflight_per_client)
        self.rate_limit_rps = rate_limit_rps
        self.rate_burst = rate_burst
        self.max_frame_bytes = int(max_frame_bytes)
        if stream_chunk_rows is None:
            stream_chunk_rows = env_int("REPRO_STREAM_CHUNK_ROWS", 32, minimum=1)
        if stream_chunk_rows < 1:
            raise ValueError(
                f"stream_chunk_rows must be >= 1, got {stream_chunk_rows}"
            )
        self.stream_chunk_rows = int(stream_chunk_rows)
        self._server: Optional[asyncio.AbstractServer] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._stats = ServerStats()
        self._stats_lock = threading.Lock()
        self._conn_tasks: Set[asyncio.Task] = set()
        self._closing = False

    # ------------------------------------------------------------------
    @property
    def address(self) -> Tuple[str, int]:
        """``(host, port)`` actually bound (after :meth:`start`)."""
        return self.host, self.port

    @property
    def stats(self) -> ServerStats:
        with self._stats_lock:
            return ServerStats(**self._stats.as_dict())

    def _bump(self, counter: str, delta: int = 1) -> None:
        with self._stats_lock:
            setattr(self._stats, counter, getattr(self._stats, counter) + delta)

    # ------------------------------------------------------------------
    async def start(self) -> "NetworkServer":
        """Bind and start accepting connections."""
        if self._server is not None:
            raise RuntimeError("server is already started")
        self._loop = asyncio.get_running_loop()
        self._server = await asyncio.start_server(self._handle, self.host, self.port)
        sockname = self._server.sockets[0].getsockname()
        self.host, self.port = sockname[0], sockname[1]
        return self

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        await self._server.serve_forever()

    async def aclose(self) -> None:
        """Stop accepting, tear down live connections. Idempotent."""
        self._closing = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        for task in list(self._conn_tasks):
            task.cancel()
        if self._conn_tasks:
            await asyncio.gather(*self._conn_tasks, return_exceptions=True)

    # ------------------------------------------------------------------
    async def _handle(self, reader, writer) -> None:
        self._bump("connections")
        self._bump("open_connections")
        conn = _Connection(self)
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
        sender = asyncio.create_task(self._sender(conn, writer))
        last_request_id = 0
        try:
            while True:
                header = await reader.readexactly(protocol.HEADER.size)
                kind, payload_len, request_id = protocol.parse_header(
                    header, max_frame_bytes=self.max_frame_bytes
                )
                last_request_id = request_id
                payload = (
                    await reader.readexactly(payload_len) if payload_len else b""
                )
                frame = protocol.decode_payload(kind, request_id, payload)
                self._dispatch(conn, frame)
        except (
            asyncio.IncompleteReadError,
            ConnectionResetError,
            BrokenPipeError,
        ):
            pass  # client went away; nothing to answer
        except protocol.ProtocolError as exc:
            # One final error frame, then the connection dies: the
            # stream offset is unrecoverable after a framing violation.
            self._bump("protocol_errors")
            self._send_error(
                conn, last_request_id, protocol.ERR_PROTOCOL, str(exc)
            )
        except asyncio.CancelledError:
            raise
        finally:
            conn.closed = True
            conn.outbox.put_nowait(_CLOSE)
            try:
                await asyncio.wait_for(sender, timeout=5.0)
            # taxonomy: fatal — teardown; any failure just cancels the sender
            except (asyncio.TimeoutError, asyncio.CancelledError, Exception):
                sender.cancel()
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass
            self._bump("open_connections", -1)
            if task is not None:
                self._conn_tasks.discard(task)

    async def _sender(self, conn: _Connection, writer) -> None:
        """Single writer per connection: frames go out whole and in
        completion order, and response encoding happens here — never
        inside a daemon consumer thread."""
        while True:
            item = await conn.outbox.get()
            if item is _CLOSE:
                return
            data = item() if callable(item) else item
            if data is None:
                continue
            try:
                writer.write(data)
                await writer.drain()
            except (ConnectionResetError, BrokenPipeError, OSError):
                conn.closed = True
                return

    # ------------------------------------------------------------------
    def _send_error(
        self, conn: _Connection, request_id: int, code: str, message: str
    ) -> None:
        self._bump("errors_sent")
        conn.send(protocol.encode_error(request_id, code, message))

    def _dispatch(self, conn: _Connection, frame: protocol.Frame) -> None:
        if isinstance(frame, protocol.ControlFrame):
            if frame.kind == protocol.PING:
                conn.send(protocol.encode_pong(frame.request_id))
            return
        if not isinstance(frame, protocol.RequestFrame):
            raise protocol.ProtocolError(
                f"server accepts only REQUEST/PING frames, got kind {frame.kind}"
            )
        self._bump("requests")
        rid = frame.request_id
        if not conn.bucket.take():
            self._bump("rejected_rate_limited")
            self._send_error(
                conn,
                rid,
                protocol.ERR_RATE_LIMITED,
                f"connection exceeded {self.rate_limit_rps:g} requests/s",
            )
            return
        if conn.inflight >= self.max_inflight_per_client:
            self._bump("rejected_quota")
            self._send_error(
                conn,
                rid,
                protocol.ERR_QUOTA,
                f"connection already has {conn.inflight} requests in flight "
                f"(quota {self.max_inflight_per_client})",
            )
            return
        # The decode gave a read-only view over the frame buffer; hand
        # the daemon its own writable copy so execution can slice and
        # convert freely while the buffer is recycled.
        images = np.array(frame.images)
        labels = None if frame.labels is None else np.array(frame.labels)
        progress = None
        if frame.stream:
            loop = self._loop

            def progress(stage, detail, c=conn, r=rid):
                # Runs on daemon threads; hop to the loop to write.
                loop.call_soon_threadsafe(self._progress, c, r, stage, detail)

        try:
            future = self.daemon.try_submit(
                images, labels=labels, seed=frame.seed, progress=progress
            )
        except QueueFull:
            self._bump("rejected_queue_full")
            self._send_error(
                conn,
                rid,
                protocol.ERR_QUEUE_FULL,
                "serving queue is at capacity; back off and retry",
            )
            return
        except RuntimeError as exc:  # daemon closed
            self._send_error(conn, rid, protocol.ERR_CLOSING, str(exc))
            return
        except (ValueError, TypeError) as exc:
            self._bump("bad_requests")
            self._send_error(conn, rid, protocol.ERR_BAD_REQUEST, str(exc))
            return
        conn.inflight += 1
        loop = self._loop
        future.add_done_callback(
            lambda fut, c=conn, r=rid, s=frame.stream: loop.call_soon_threadsafe(
                self._resolved, c, r, fut, s
            )
        )

    def _progress(
        self, conn: _Connection, request_id: int, stage: str, detail: dict
    ) -> None:
        """Write one streamed lifecycle marker (on the event loop)."""
        if conn.closed:
            return
        self._bump("progress_sent")
        conn.send(protocol.encode_progress(request_id, stage, detail))

    def _resolved(
        self, conn: _Connection, request_id: int, future, stream: bool = False
    ) -> None:
        """Runs on the event loop once the daemon resolves a future."""
        conn.inflight -= 1
        if conn.closed:
            # The client left before its answer arrived: drop it. The
            # daemon already did the work; only the write-back is moot.
            self._bump("disconnected_inflight")
            future.exception()  # consume, avoid the unretrieved warning
            return
        exc = future.exception()
        if exc is not None:
            code = (
                protocol.ERR_QUEUE_FULL
                if isinstance(exc, QueueFull)
                else protocol.ERR_INTERNAL
                if classify(exc) == "retryable"
                else protocol.ERR_BAD_REQUEST
            )
            if code == protocol.ERR_BAD_REQUEST:
                self._bump("bad_requests")
            self._send_error(
                conn,
                request_id,
                code,
                f"{type(exc).__name__}: {exc}",
            )
            return
        result = future.result()
        self._bump("responses")
        if stream:
            self._stream_result(conn, request_id, result)
            return
        # Defer the (logits -> bytes) encode to the sender coroutine.
        conn.send(
            lambda r=result, rid=request_id: protocol.encode_response(
                rid, r.logits, _wire_summary(r)
            )
        )

    def _stream_result(self, conn: _Connection, request_id: int, result) -> None:
        """Deliver one result as PARTIAL row-slices (the last slice
        carries the summary). Slices are queued in order on the
        single-writer outbox, so they arrive contiguous and in
        sequence; encoding stays deferred to the sender coroutine."""
        self._bump("streamed_responses")
        chunk = self.stream_chunk_rows
        total = result.logits.shape[0]
        offsets = list(range(0, total, chunk)) or [0]
        for seq, offset in enumerate(offsets):
            last = seq == len(offsets) - 1
            self._bump("partials_sent")
            conn.send(
                lambda r=result, rid=request_id, o=offset, s=seq, l=last, c=chunk: (
                    protocol.encode_partial(
                        rid,
                        r.logits[o : o + c],
                        offset=o,
                        seq=s,
                        last=l,
                        summary=_wire_summary(r) if l else None,
                    )
                )
            )


def _wire_summary(result) -> dict:
    """The flat, JSON-safe result summary a response frame carries."""
    summary = {}
    for key, value in result.summary().items():
        if isinstance(value, (str, bool)) or value is None:
            summary[key] = value
        elif isinstance(value, (int, float)):
            summary[key] = float(value) if isinstance(value, float) else int(value)
        else:
            summary[key] = str(value)
    summary.setdefault("micro_batches", int(result.micro_batches))
    return summary


class ServerThread:
    """Run a :class:`NetworkServer` event loop in a background thread.

    The synchronous harness tests, examples, and the CLI use: start it,
    read ``(host, port)``, drive it with blocking clients, close it.

    ::

        with ServerThread(daemon, rate_limit_rps=500) as (host, port):
            with NetworkClient(host, port) as client:
                result = client.infer(images, seed=7)
    """

    def __init__(self, daemon, **server_kwargs) -> None:
        self._daemon = daemon
        self._kwargs = server_kwargs
        self.server: Optional[NetworkServer] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._started = threading.Event()
        self._startup_error: Optional[BaseException] = None

    def start(self) -> Tuple[str, int]:
        if self._thread is not None:
            raise RuntimeError("ServerThread is already started")
        self._thread = threading.Thread(
            target=self._run, name="repro-net-server", daemon=True
        )
        self._thread.start()
        if not self._started.wait(timeout=10.0):
            raise RuntimeError("network server failed to start within 10s")
        if self._startup_error is not None:
            raise RuntimeError("network server failed to start") from self._startup_error
        return self.server.address

    def _run(self) -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        self._loop = loop
        server = NetworkServer(self._daemon, **self._kwargs)
        try:
            loop.run_until_complete(server.start())
        # taxonomy: fatal — startup failure is re-raised to the caller
        except BaseException as exc:  # noqa: BLE001 - reported to starter
            self._startup_error = exc
            self._started.set()
            loop.close()
            return
        self.server = server
        self._started.set()
        try:
            loop.run_forever()
        finally:
            loop.run_until_complete(server.aclose())
            loop.close()

    def close(self) -> None:
        if self._loop is None or not self._thread or not self._thread.is_alive():
            return
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout=10.0)

    def __enter__(self) -> Tuple[str, int]:
        return self.start()

    def __exit__(self, *exc) -> None:
        self.close()
