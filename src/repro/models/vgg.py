"""VGG-small for CIFAR-10 (paper Table 2, Figs. 10-11).

The paper-scale VGG-small is 128-128-M-256-256-M-512-512-M with two FC
layers. ``width_multiplier`` scales the channel counts for CPU training
(default 1/8 scale: 16-16-M-32-32-M-64-64-M).
"""

from __future__ import annotations

from typing import Optional

from repro.autograd.layers import MaxPool2d
from repro.autograd.module import Module
from repro.autograd.tensor import Tensor
from repro.core.layers import BinaryLinear, RandomizedBinaryConv2d
from repro.hardware.config import HardwareConfig
from repro.models.common import InputBinarize, ThermometerEncode
from repro.utils.rng import SeedLike, new_rng, spawn_rng

#: Paper-scale channel plan ("M" = 2x2 max pool).
PAPER_PLAN = (128, 128, "M", 256, 256, "M", 512, 512, "M")


class VggSmall(Module):
    """Binarized VGG-small with AQFP randomized cells.

    Parameters
    ----------
    in_channels, image_size:
        Input geometry; the synthetic CIFAR stand-in is 3 x 16 x 16.
    width_multiplier:
        Scales the 128/256/512 channel plan (1.0 = paper scale).
    """

    def __init__(
        self,
        in_channels: int = 3,
        image_size: int = 16,
        n_classes: int = 10,
        width_multiplier: float = 0.125,
        hardware: Optional[HardwareConfig] = None,
        stochastic: bool = True,
        input_levels: int = 4,
        seed: SeedLike = 0,
    ) -> None:
        super().__init__()
        if width_multiplier <= 0:
            raise ValueError(f"width_multiplier must be > 0, got {width_multiplier}")
        hardware = hardware or HardwareConfig()
        self.hardware = hardware
        rng = new_rng(seed)
        seeds = spawn_rng(rng, sum(1 for p in PAPER_PLAN if p != "M") + 1)

        self.input_binarize = (
            ThermometerEncode(input_levels) if input_levels > 1 else InputBinarize()
        )
        self.features = []
        channels = in_channels * max(input_levels, 1)
        spatial = image_size
        conv_index = 0
        for item in PAPER_PLAN:
            if item == "M":
                layer = MaxPool2d(2)
                spatial //= 2
            else:
                out_channels = max(int(item * width_multiplier), 8)
                layer = RandomizedBinaryConv2d(
                    channels,
                    out_channels,
                    kernel_size=3,
                    padding=1,
                    hardware=hardware,
                    stochastic=stochastic,
                    seed=seeds[conv_index],
                )
                channels = out_channels
                conv_index += 1
            name = f"feat{len(self.features)}"
            setattr(self, name, layer)
            self.features.append(layer)
        if spatial < 1:
            raise ValueError(
                f"image_size {image_size} too small for the VGG pooling plan"
            )
        self.flat_features = channels * spatial * spatial
        self.head = BinaryLinear(self.flat_features, n_classes, seed=seeds[-1])

    def forward(self, x: Tensor) -> Tensor:
        x = self.input_binarize(x)
        for layer in self.features:
            x = layer(x)
        x = x.reshape(x.shape[0], -1)
        return self.head(x)
