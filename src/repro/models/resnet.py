"""Binarized ResNet-18 (paper Table 2, last row).

Residual networks binarize badly without real-valued shortcuts, so the
blocks follow the Bi-Real-style construction: the convolution branches
are binarized AQFP cells while the skip connection stays in the value
domain; the block output is re-normalized and passed through the AQFP
randomized binarization before feeding the next block.

``width_multiplier`` scales the 64-128-256-512 plan (default 1/8 for CPU
training on the synthetic CIFAR stand-in).
"""

from __future__ import annotations

from typing import Optional

from repro.autograd.layers import AvgPool2d, BatchNorm2d
from repro.autograd.module import Module
from repro.autograd.tensor import Tensor
from repro.core.binarization import randomized_sign
from repro.core.layers import BinaryLinear, RandomizedBinaryConv2d, _value_domain_scale
from repro.hardware.config import HardwareConfig
from repro.models.common import InputBinarize, ThermometerEncode
from repro.utils.rng import RngMixin, SeedLike, new_rng, spawn_rng

import numpy as np


class _OutputBinarize(Module, RngMixin):
    """BN -> HardTanh -> AQFP randomized binarization for block outputs."""

    def __init__(
        self,
        channels: int,
        hardware: HardwareConfig,
        stochastic: bool,
        noise_domain: str = "normalized",
        seed: SeedLike = None,
    ) -> None:
        Module.__init__(self)
        RngMixin.__init__(self, seed)
        self.bn = BatchNorm2d(channels)
        self.hardware = hardware
        self.stochastic = stochastic
        self.noise_domain = noise_domain
        self.sample_in_eval = False
        self.eval_window_bits = hardware.window_bits

    def forward(self, x: Tensor) -> Tensor:
        z = self.bn(x).hardtanh()
        if self.noise_domain == "value":
            scale = _value_domain_scale(
                self.bn.weight.data,
                np.ones_like(self.bn.weight.data),
                self.bn.last_var,
                self.bn.eps,
            ).reshape(1, -1, 1, 1)
        else:
            scale = 1.0
        return randomized_sign(
            z,
            gray_zone=self.hardware.value_gray_zone,
            scale=scale,
            rng=self.rng,
            stochastic=self.stochastic and (self.training or self.sample_in_eval),
            window_bits=1 if self.training else self.eval_window_bits,
        )


class BasicBlock(Module):
    """Two binarized 3x3 convolutions with a value-domain shortcut."""

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        stride: int,
        hardware: HardwareConfig,
        stochastic: bool,
        seed: SeedLike = None,
    ) -> None:
        super().__init__()
        rng = new_rng(seed)
        seeds = spawn_rng(rng, 4)
        self.cell1 = RandomizedBinaryConv2d(
            in_channels,
            out_channels,
            kernel_size=3,
            stride=stride,
            padding=1,
            hardware=hardware,
            stochastic=stochastic,
            seed=seeds[0],
        )
        self.cell2 = RandomizedBinaryConv2d(
            out_channels,
            out_channels,
            kernel_size=3,
            padding=1,
            hardware=hardware,
            stochastic=stochastic,
            binarize_output=False,
            seed=seeds[1],
        )
        self.needs_projection = stride != 1 or in_channels != out_channels
        if self.needs_projection:
            self.projection = RandomizedBinaryConv2d(
                in_channels,
                out_channels,
                kernel_size=1,
                stride=stride,
                hardware=hardware,
                stochastic=stochastic,
                binarize_output=False,
                seed=seeds[2],
            )
        self.output_binarize = _OutputBinarize(
            out_channels, hardware, stochastic, seed=seeds[3]
        )

    def forward(self, x: Tensor) -> Tensor:
        branch = self.cell2(self.cell1(x))
        shortcut = self.projection(x) if self.needs_projection else x
        return self.output_binarize(branch + shortcut)


class ResNet18(Module):
    """Binarized ResNet-18: 4 stages of 2 basic blocks."""

    STAGE_PLAN = (64, 128, 256, 512)

    def __init__(
        self,
        in_channels: int = 3,
        image_size: int = 16,
        n_classes: int = 10,
        width_multiplier: float = 0.125,
        hardware: Optional[HardwareConfig] = None,
        stochastic: bool = True,
        input_levels: int = 4,
        seed: SeedLike = 0,
    ) -> None:
        super().__init__()
        if width_multiplier <= 0:
            raise ValueError(f"width_multiplier must be > 0, got {width_multiplier}")
        hardware = hardware or HardwareConfig()
        self.hardware = hardware
        rng = new_rng(seed)
        seeds = spawn_rng(rng, 11)

        widths = [max(int(w * width_multiplier), 8) for w in self.STAGE_PLAN]
        self.input_binarize = (
            ThermometerEncode(input_levels) if input_levels > 1 else InputBinarize()
        )
        self.stem = RandomizedBinaryConv2d(
            in_channels * max(input_levels, 1),
            widths[0],
            kernel_size=3,
            padding=1,
            hardware=hardware,
            stochastic=stochastic,
            seed=seeds[0],
        )
        self.blocks = []
        channels = widths[0]
        spatial = image_size
        seed_idx = 1
        for stage, width in enumerate(widths):
            for block_idx in range(2):
                stride = 2 if (stage > 0 and block_idx == 0) else 1
                block = BasicBlock(
                    channels,
                    width,
                    stride,
                    hardware,
                    stochastic,
                    seed=seeds[seed_idx],
                )
                seed_idx += 1
                setattr(self, f"stage{stage}_block{block_idx}", block)
                self.blocks.append(block)
                channels = width
                spatial //= stride
        if spatial < 1:
            raise ValueError(f"image_size {image_size} too small for 4 stages")
        self.pool = AvgPool2d(spatial)
        self.head = BinaryLinear(channels, n_classes, seed=seeds[10])

    def forward(self, x: Tensor) -> Tensor:
        x = self.input_binarize(x)
        x = self.stem(x)
        for block in self.blocks:
            x = block(x)
        x = self.pool(x)
        x = x.reshape(x.shape[0], -1)
        return self.head(x)
