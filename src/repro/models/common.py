"""Bits shared by the model zoo."""

from __future__ import annotations

import numpy as np

from repro.autograd.module import Module
from repro.autograd.tensor import Tensor
from repro.core.binarization import deterministic_sign


class InputBinarize(Module):
    """Sign-binarize the network input (+-1), with clipped STE backward.

    The crossbar consumes +-1 current pulses, so images in [-1, 1] are
    thresholded at zero on entry. Keeping the op differentiable (STE)
    lets gradients reach nothing upstream here, but preserves uniformity
    when cells are composed.
    """

    def forward(self, x: Tensor) -> Tensor:
        return deterministic_sign(x)


class ThermometerEncode(Module):
    """Thermometer-encode each input channel into ``levels`` +-1 planes.

    Plane k is ``sign(x - t_k)`` with thresholds evenly spaced in
    (-1, 1). All planes are +-1, so they remain valid crossbar inputs
    while preserving amplitude information that a single sign plane
    destroys — the standard input treatment for BNN accelerators whose
    first layer must also be binary.
    """

    def __init__(self, levels: int = 4) -> None:
        super().__init__()
        if levels < 1:
            raise ValueError(f"levels must be >= 1, got {levels}")
        self.levels = levels
        self.thresholds = np.array(
            [-1.0 + 2.0 * (k + 1) / (levels + 1) for k in range(levels)]
        )

    @property
    def channel_multiplier(self) -> int:
        return self.levels

    def forward(self, x: Tensor) -> Tensor:
        if x.ndim != 4:
            raise ValueError(f"expected NCHW input, got shape {x.shape}")
        planes = [deterministic_sign(x - float(t)) for t in self.thresholds]
        from repro.autograd.tensor import concatenate

        return concatenate(planes, axis=1)


def set_sample_in_eval(model: Module, enabled: bool) -> None:
    """Toggle stochastic device sampling during eval on all cells."""
    for _, module in model.named_modules():
        if hasattr(module, "sample_in_eval"):
            module.sample_in_eval = enabled
