"""The MNIST MLP (paper Table 3; same architecture family as JBNN [27])."""

from __future__ import annotations

from typing import Optional, Sequence

from repro.autograd.module import Module
from repro.autograd.tensor import Tensor
from repro.core.layers import BinaryLinear, RandomizedBinaryLinear
from repro.hardware.config import HardwareConfig
from repro.models.common import InputBinarize
from repro.utils.rng import SeedLike, new_rng, spawn_rng


class Mlp(Module):
    """Binarized multi-layer perceptron with randomized AQFP cells.

    Structure: input sign -> K randomized binary FC cells -> real-valued
    binary-weight classifier head.

    Parameters
    ----------
    in_features:
        Flattened input size (784 for real MNIST; the synthetic stand-in
        uses 144 by default).
    hidden:
        Hidden layer widths; the paper-scale model uses (256, 100).
    """

    def __init__(
        self,
        in_features: int = 144,
        hidden: Sequence[int] = (128, 64),
        n_classes: int = 10,
        hardware: Optional[HardwareConfig] = None,
        stochastic: bool = True,
        seed: SeedLike = 0,
    ) -> None:
        super().__init__()
        if not hidden:
            raise ValueError("need at least one hidden layer")
        hardware = hardware or HardwareConfig()
        rng = new_rng(seed)
        seeds = spawn_rng(rng, len(hidden) + 1)
        self.hardware = hardware
        self.input_binarize = InputBinarize()
        dims = [in_features, *hidden]
        self.cells = []
        for i in range(len(hidden)):
            cell = RandomizedBinaryLinear(
                dims[i],
                dims[i + 1],
                hardware=hardware,
                stochastic=stochastic,
                seed=seeds[i],
            )
            setattr(self, f"cell{i}", cell)
            self.cells.append(cell)
        self.head = BinaryLinear(dims[-1], n_classes, seed=seeds[-1])

    def forward(self, x: Tensor) -> Tensor:
        if x.ndim == 4:
            x = x.reshape(x.shape[0], -1)
        x = self.input_binarize(x)
        for cell in self.cells:
            x = cell(x)
        return self.head(x)
