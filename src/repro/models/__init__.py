"""Network architectures used in the paper's evaluation.

* :class:`Mlp` — the JBNN-style MLP compared on MNIST (Table 3).
* :class:`VggSmall` — VGG-small for CIFAR-10 (Table 2, Figs. 10-11).
* :class:`ResNet18` — the binarized ResNet-18 of Table 2's last row.

All models accept a :class:`repro.hardware.HardwareConfig` so the
randomized binarization inside every cell reflects the target device,
and a ``stochastic`` switch to fall back to the deterministic STE
baseline for ablations. ``width_multiplier``/``hidden`` arguments scale
the models down for offline CPU training.
"""

from repro.models.mlp import Mlp
from repro.models.vgg import VggSmall
from repro.models.resnet import ResNet18

__all__ = ["Mlp", "VggSmall", "ResNet18"]
