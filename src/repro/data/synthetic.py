"""Deterministic synthetic image classification tasks.

Each class is a smooth random prototype (low-pass filtered noise, so the
patterns have MNIST/CIFAR-like spatial correlation); samples are the
prototype under random gain, shift (translation), and additive noise.
Difficulty is controlled by the noise scale: the defaults produce tasks
where a small BNN reaches high but not trivial accuracy, which is what
the accuracy-vs-hardware-configuration experiments need (they measure
*degradation*, so the clean task must have headroom).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np
from scipy import ndimage

from repro.utils.rng import SeedLike, new_rng


@dataclass
class Dataset:
    """Images (N, C, H, W) in [-1, 1] and integer labels (N,)."""

    images: np.ndarray
    labels: np.ndarray
    n_classes: int

    def __post_init__(self) -> None:
        if self.images.ndim != 4:
            raise ValueError(f"images must be NCHW, got shape {self.images.shape}")
        if len(self.images) != len(self.labels):
            raise ValueError("images and labels must have equal length")
        if self.n_classes < 2:
            raise ValueError(f"need >= 2 classes, got {self.n_classes}")

    def __len__(self) -> int:
        return len(self.images)

    @property
    def image_shape(self) -> Tuple[int, int, int]:
        return tuple(self.images.shape[1:])

    def split(self, train_fraction: float = 0.8, seed: SeedLike = 0):
        """Shuffled train/test split; returns (train, test) Datasets."""
        if not 0.0 < train_fraction < 1.0:
            raise ValueError(f"train_fraction must be in (0, 1), got {train_fraction}")
        rng = new_rng(seed)
        order = rng.permutation(len(self))
        cut = int(len(self) * train_fraction)
        train_idx, test_idx = order[:cut], order[cut:]
        return (
            Dataset(self.images[train_idx], self.labels[train_idx], self.n_classes),
            Dataset(self.images[test_idx], self.labels[test_idx], self.n_classes),
        )

    def subset(self, n: int) -> "Dataset":
        """First ``n`` samples (deterministic)."""
        if n < 1:
            raise ValueError(f"n must be >= 1, got {n}")
        return Dataset(self.images[:n], self.labels[:n], self.n_classes)


def _smooth_prototypes(
    n_classes: int, channels: int, height: int, width: int, rng: np.random.Generator
) -> np.ndarray:
    """Low-pass-filtered noise prototypes, normalized to unit max-abs."""
    protos = rng.normal(size=(n_classes, channels, height, width))
    sigma = max(min(height, width) / 8.0, 0.8)
    protos = ndimage.gaussian_filter(protos, sigma=(0, 0, sigma, sigma))
    max_abs = np.abs(protos).reshape(n_classes, -1).max(axis=1)
    return protos / max_abs[:, None, None, None]


def make_classification_images(
    n_samples: int,
    n_classes: int = 10,
    image_shape: Tuple[int, int, int] = (1, 12, 12),
    noise_scale: float = 0.45,
    max_shift: int = 1,
    seed: SeedLike = 0,
) -> Dataset:
    """Generate a structured image classification dataset.

    Parameters
    ----------
    n_samples:
        Total number of images (classes are balanced up to rounding).
    noise_scale:
        Additive Gaussian noise standard deviation (task difficulty).
    max_shift:
        Uniform random translation in pixels per axis.
    """
    if n_samples < n_classes:
        raise ValueError("need at least one sample per class")
    if noise_scale < 0:
        raise ValueError(f"noise_scale must be >= 0, got {noise_scale}")
    channels, height, width = image_shape
    rng = new_rng(seed)
    protos = _smooth_prototypes(n_classes, channels, height, width, rng)

    labels = rng.integers(0, n_classes, size=n_samples)
    gains = rng.uniform(0.8, 1.2, size=(n_samples, 1, 1, 1))
    images = protos[labels] * gains
    if max_shift > 0:
        shifts = rng.integers(-max_shift, max_shift + 1, size=(n_samples, 2))
        for i in range(n_samples):
            images[i] = np.roll(images[i], tuple(shifts[i]), axis=(1, 2))
    images = images + rng.normal(0.0, noise_scale, size=images.shape)
    images = np.clip(images, -1.0, 1.0)
    return Dataset(images.astype(np.float64), labels.astype(np.int64), n_classes)


def make_mnist_like(
    n_samples: int = 2000,
    image_size: int = 12,
    n_classes: int = 10,
    noise_scale: float = 0.4,
    seed: SeedLike = 0,
) -> Dataset:
    """MNIST stand-in: single-channel structured digits-like task."""
    return make_classification_images(
        n_samples,
        n_classes=n_classes,
        image_shape=(1, image_size, image_size),
        noise_scale=noise_scale,
        seed=seed,
    )


def make_cifar_like(
    n_samples: int = 2000,
    image_size: int = 16,
    n_classes: int = 10,
    noise_scale: float = 0.5,
    seed: SeedLike = 0,
) -> Dataset:
    """CIFAR-10 stand-in: three-channel structured task."""
    return make_classification_images(
        n_samples,
        n_classes=n_classes,
        image_shape=(3, image_size, image_size),
        noise_scale=noise_scale,
        seed=seed,
    )
