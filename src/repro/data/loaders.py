"""Minimal shuffling batch iterator."""

from __future__ import annotations

import math
from typing import Iterator, Tuple

import numpy as np

from repro.data.synthetic import Dataset
from repro.utils.rng import SeedLike, new_rng


class DataLoader:
    """Iterate (images, labels) numpy batches over a :class:`Dataset`.

    Reshuffles each epoch when ``shuffle=True`` (deterministically from
    the seed, advancing per epoch).
    """

    def __init__(
        self,
        dataset: Dataset,
        batch_size: int = 64,
        shuffle: bool = True,
        seed: SeedLike = 0,
    ) -> None:
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        self.dataset = dataset
        self.batch_size = batch_size
        self.shuffle = shuffle
        self._rng = new_rng(seed)

    def __len__(self) -> int:
        return math.ceil(len(self.dataset) / self.batch_size)

    def __iter__(self) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
        n = len(self.dataset)
        order = self._rng.permutation(n) if self.shuffle else np.arange(n)
        for start in range(0, n, self.batch_size):
            idx = order[start : start + self.batch_size]
            yield self.dataset.images[idx], self.dataset.labels[idx]
