"""Synthetic datasets and batching.

The paper trains on MNIST and CIFAR-10; those archives are unavailable
offline, so :mod:`repro.data.synthetic` generates deterministic
structured image classification tasks with matching tensor layouts
(documented substitution — see DESIGN.md). :mod:`repro.data.loaders`
provides the minimal shuffling batch iterator the trainer consumes.
"""

from repro.data.synthetic import Dataset, make_cifar_like, make_mnist_like
from repro.data.loaders import DataLoader

__all__ = ["Dataset", "make_mnist_like", "make_cifar_like", "DataLoader"]
