"""Deterministic fault injection for the runtime subsystem.

Reliability claims are only testable if failures can be produced *on
demand and reproducibly*. This module is the runtime's chaos harness: a
:class:`FaultPlan` describes **where** (an injection *site* threaded
through the scheduler, transport, and daemon), **when** (match on the
call context, skip the first ``after`` hits, fire at most ``times``
times, optionally with a seeded probability), and **what** (kill the
worker process, raise a named exception, sleep past a deadline, or
poison the request payload). Execution paths call
:func:`fault_point` at the instrumented sites; with no plan installed
the call is a no-op a branch predictor eats for breakfast, so the hooks
stay enabled in production code.

Injection sites (the ``site`` key of a :class:`FaultSpec`):

``"scheduler.wave"``
    Parent side, on entry to
    :meth:`~repro.runtime.scheduler.ShardParallelScheduler.run_shards`.
    Context: ``shards``, ``rows``.
``"worker.shard"``
    Worker side, at the top of every pool shard task. Context:
    ``shard`` (index within the plan), ``rows``. ``action="kill"``
    here is the canonical "worker dies mid-wave" chaos scenario.
``"transport.publish"``
    Parent side, inside :meth:`~repro.runtime.transport.ActivationRing.publish`.
    Context: ``nbytes``.
``"transport.attach"``
    Worker side, on every shared-memory segment attach. Context:
    ``segment``. Pair with ``error="TransportUnavailable"`` and
    ``after=N-1`` to fail the Nth attach.
``"daemon.request"``
    Daemon consumer, once per request at wave assembly (after the
    request's plan — and therefore its seeds — have been drawn, so a
    poisoned request never perturbs its neighbours' randomness).
    Context: ``rows``.
``"daemon.consumer"``
    Daemon consumer loop, between waves (no request is in flight).
    ``action="raise"`` here crashes the consumer thread — the
    supervisor-restart chaos scenario.

Determinism: triggering is purely counter- and match-based by default
(``after`` / ``times`` / ``match``), and the optional probabilistic
mode draws from a generator seeded by ``(plan.seed, spec index)`` — two
runs of the same plan observe the identical fault schedule.

Plans cross process boundaries explicitly: the pool schedulers snapshot
the active plan when they build their *first* worker pool and ship it
through the pool initializer (counters reset in the child). Rebuilt
pools — the recovery path — come up **clean**, modelling the real
scenario "a worker crashed once; its replacement is healthy" and
letting retry-based recovery actually succeed. The
``REPRO_FAULT_PLAN`` environment variable (inline JSON, or a path to a
JSON file) installs a plan at first use in any process that inherits
it, which is how the chaos CI tier configures whole test runs.
"""

from __future__ import annotations

import json
import os
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.runtime.env import env_str
from repro.runtime.recovery import DeadlineExceeded, PoisonedPayload

#: Documented injection sites (informational — unknown sites are legal,
#: they just never fire unless some code path names them).
KNOWN_SITES = (
    "scheduler.wave",
    "worker.shard",
    "transport.publish",
    "transport.attach",
    "daemon.request",
    "daemon.consumer",
)

_ACTIONS = ("raise", "kill", "delay", "poison")

#: Exit code a killed worker dies with — distinctive in pool post-mortems.
KILL_EXIT_CODE = 87


class FaultInjected(RuntimeError):
    """Default exception for ``action="raise"`` specs."""


def _resolve_error(name: str):
    """Exception class for a spec's ``error`` name.

    Resolution is lazy so this module never imports the modules it
    instruments (transport imports faults, not the other way around).
    """
    builtin = {
        "RuntimeError": RuntimeError,
        "ValueError": ValueError,
        "OSError": OSError,
        "TimeoutError": TimeoutError,
        "KeyboardInterrupt": KeyboardInterrupt,
        "FaultInjected": FaultInjected,
        "DeadlineExceeded": DeadlineExceeded,
        "PoisonedPayload": PoisonedPayload,
    }
    if name in builtin:
        return builtin[name]
    if name == "TransportUnavailable":
        from repro.runtime.transport import TransportUnavailable

        return TransportUnavailable
    if name == "BrokenProcessPool":
        from concurrent.futures.process import BrokenProcessPool

        return BrokenProcessPool
    raise ValueError(
        f"unknown fault error {name!r}; known: "
        f"{', '.join(sorted(builtin))}, TransportUnavailable, "
        f"BrokenProcessPool"
    )


@dataclass
class FaultSpec:
    """One injected fault: where it strikes, when it triggers, what it
    does.

    ``match`` filters on the call context (every key must equal the
    context value); ``after`` skips the first N matching hits; ``times``
    caps how often the spec fires (``None`` = every matching hit);
    ``p`` fires probabilistically from the plan's seeded generator
    (1.0 = always, the deterministic default).
    """

    site: str
    action: str = "raise"
    error: str = "FaultInjected"
    delay_s: float = 0.0
    after: int = 0
    times: Optional[int] = 1
    match: Dict[str, object] = field(default_factory=dict)
    p: float = 1.0

    def __post_init__(self) -> None:
        if self.action not in _ACTIONS:
            raise ValueError(
                f"fault action must be one of {', '.join(_ACTIONS)}; "
                f"got {self.action!r}"
            )
        if self.action == "raise":
            _resolve_error(self.error)  # fail fast on unknown names
        if self.delay_s < 0:
            raise ValueError(f"delay_s must be >= 0, got {self.delay_s}")
        if not 0.0 <= self.p <= 1.0:
            raise ValueError(f"p must be in [0, 1], got {self.p}")
        if self.after < 0:
            raise ValueError(f"after must be >= 0, got {self.after}")
        if self.times is not None and self.times < 1:
            raise ValueError(f"times must be >= 1 or None, got {self.times}")

    def matches(self, context: Dict[str, object]) -> bool:
        return all(context.get(key) == value for key, value in self.match.items())

    def as_dict(self) -> dict:
        payload = {"site": self.site, "action": self.action}
        if self.action == "raise":
            payload["error"] = self.error
        if self.action == "delay":
            payload["delay_s"] = self.delay_s
        if self.after:
            payload["after"] = self.after
        if self.times != 1:
            payload["times"] = self.times
        if self.match:
            payload["match"] = dict(self.match)
        if self.p != 1.0:
            payload["p"] = self.p
        return payload


class FaultPlan:
    """A seeded, serializable schedule of injected faults.

    Counters (hits / fires per spec) are runtime state local to the
    process holding the plan; :meth:`as_dict` serializes only the
    schedule, so a plan shipped to a worker starts counting fresh.
    """

    def __init__(self, specs: List[FaultSpec], *, seed: int = 0) -> None:
        self.specs = list(specs)
        self.seed = int(seed)
        self._lock = threading.Lock()
        self.reset()

    # ------------------------------------------------------------------
    def reset(self) -> None:
        """Zero every spec's hit/fire counters and re-seed the
        probabilistic draws."""
        with getattr(self, "_lock", threading.Lock()):
            self._hits = [0] * len(self.specs)
            self._fires = [0] * len(self.specs)
            self._rngs = [
                np.random.default_rng((self.seed, index))
                for index in range(len(self.specs))
            ]

    def counters(self) -> List[Tuple[int, int]]:
        """Per-spec ``(hits, fires)`` snapshots (for assertions)."""
        with self._lock:
            return list(zip(self._hits, self._fires))

    # ------------------------------------------------------------------
    def visit(self, site: str, context: Dict[str, object]) -> Optional[FaultSpec]:
        """Record one hit at ``site``; returns the spec that should
        fire, if any (first match wins)."""
        with self._lock:
            for index, spec in enumerate(self.specs):
                if spec.site != site or not spec.matches(context):
                    continue
                self._hits[index] += 1
                if self._hits[index] <= spec.after:
                    continue
                if spec.times is not None and self._fires[index] >= spec.times:
                    continue
                if spec.p < 1.0 and self._rngs[index].random() >= spec.p:
                    continue
                self._fires[index] += 1
                return spec
        return None

    # ------------------------------------------------------------------
    def as_dict(self) -> dict:
        return {
            "seed": self.seed,
            "specs": [spec.as_dict() for spec in self.specs],
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "FaultPlan":
        specs = [FaultSpec(**spec) for spec in payload.get("specs", [])]
        return cls(specs, seed=payload.get("seed", 0))

    def to_json(self) -> str:
        return json.dumps(self.as_dict())

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        return cls.from_dict(json.loads(text))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        sites = ",".join(spec.site for spec in self.specs)
        return f"FaultPlan(seed={self.seed}, specs=[{sites}])"


# ----------------------------------------------------------------------
# The active plan: one per process, installed explicitly or inherited
# from REPRO_FAULT_PLAN at first fault_point call.
# ----------------------------------------------------------------------
_ACTIVE: Optional[FaultPlan] = None
_ENV_CHECKED = False
_INSTALL_LOCK = threading.Lock()


def install_fault_plan(plan: Optional[FaultPlan]) -> Optional[FaultPlan]:
    """Install ``plan`` as this process's active plan (``None`` clears
    it); returns the previously active plan."""
    global _ACTIVE, _ENV_CHECKED
    with _INSTALL_LOCK:
        previous, _ACTIVE = _ACTIVE, plan
        # An explicit install (or clear) overrides env inheritance.
        _ENV_CHECKED = True
        return previous


def active_fault_plan() -> Optional[FaultPlan]:
    """The process's active plan, loading ``REPRO_FAULT_PLAN`` (inline
    JSON or a file path) the first time anyone asks."""
    global _ACTIVE, _ENV_CHECKED
    if _ACTIVE is None and not _ENV_CHECKED:
        with _INSTALL_LOCK:
            if _ACTIVE is None and not _ENV_CHECKED:
                _ENV_CHECKED = True
                text = env_str("REPRO_FAULT_PLAN")
                if text is not None:
                    if not text.startswith("{"):
                        with open(text) as fh:
                            text = fh.read()
                    _ACTIVE = FaultPlan.from_json(text)
    return _ACTIVE


def clear_inherited_plan() -> None:
    """Drop a plan this process inherited through a fork.

    Pool workers call this from their initializer when no plan was
    shipped to them: a forkserver (or plain fork) snapshot can carry
    the parent's installed plan in this module's globals, which would
    re-arm the same faults in every rebuilt pool and keep recovery from
    ever converging. Unlike :func:`install_fault_plan`, the
    ``REPRO_FAULT_PLAN`` environment path stays live — whole-process
    chaos runs configure workers through the (inherited) environment.
    """
    global _ACTIVE, _ENV_CHECKED
    with _INSTALL_LOCK:
        _ACTIVE = None
        _ENV_CHECKED = False


class fault_injection:
    """Context manager scoping a plan: ``with fault_injection(plan): ...``
    installs it on entry and restores the previous plan on exit."""

    def __init__(self, plan: Optional[FaultPlan]) -> None:
        self.plan = plan
        self._previous: Optional[FaultPlan] = None

    def __enter__(self) -> Optional[FaultPlan]:
        self._previous = install_fault_plan(self.plan)
        return self.plan

    def __exit__(self, *exc) -> None:
        install_fault_plan(self._previous)


def fault_point(site: str, **context) -> None:
    """Give the active fault plan a chance to strike at ``site``.

    No-op without an installed plan. A firing spec either sleeps
    (``delay``), raises (``raise`` / ``poison``), or kills the current
    process (``kill`` — ``os._exit``, no cleanup, exactly like a
    segfaulting worker).
    """
    plan = active_fault_plan()
    if plan is None:
        return
    spec = plan.visit(site, context)
    if spec is None:
        return
    if spec.action == "delay":
        time.sleep(spec.delay_s)
        return
    if spec.action == "kill":
        os._exit(KILL_EXIT_CODE)
    if spec.action == "poison":
        raise PoisonedPayload(
            f"injected poisoned payload at {site} (context {context!r})"
        )
    raise _resolve_error(spec.error)(
        f"injected fault at {site} (context {context!r})"
    )
