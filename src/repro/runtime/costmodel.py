"""Calibratable execution cost model driving the ``"adaptive"`` scheduler.

The :class:`~repro.runtime.plan.ExecutionPlan` task DAG carries
per-task cost estimates in *sampled observation windows* — the quantity
the kernel benchmarks show bounds the stochastic path. This module
turns those window counts into predicted wall-clock seconds under each
fan-out the runtime offers:

``"serial"``
    every task in sequence in the calling process;
``"shard-parallel"``
    shards spread over a ``workers``-process pool, paying a per-shard
    ship cost over the :class:`~repro.runtime.transport.ActivationRing`
    plus a fixed pool submission overhead;
``"tile-parallel"``
    each crossbar stage's column tiles spread over ``workers`` threads,
    paying a per-tile dispatch/fold cost.

The :class:`CostModel` compares the predictions and picks the cheapest
mode — falling back to serial outright for plans whose total cost sits
below :attr:`CostCoefficients.break_even_windows`, so tiny requests
never pay pool tax. The coefficients are plain measured constants: the
defaults are conservative laptop-class numbers, and :func:`calibrate`
refits them from the engine's own :class:`~repro.api.results.LayerTelemetry`
(``make bench`` records a refreshed set next to the kernel timings).
Coefficients persist to JSON (:meth:`CostCoefficients.save` /
:meth:`CostCoefficients.load`; the ``REPRO_COST_COEFFICIENTS``
environment variable points the adaptive scheduler at a saved file).

The chooser never trades correctness for speed: *which* modes are
candidates is decided by :func:`candidate_modes` from the
reproducibility contracts (shard fan-out needs seeded shards and a
registered backend name the workers can resolve; tile fan-out is
bit-identical to serial only for the per-tile-generator bit-level
backends), so every mode the model may pick yields logits bit-identical
to serial execution of the same plan.
"""

from __future__ import annotations

import json
import math
import os
import time
from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence, Tuple

from repro.runtime.env import env_path
from repro.runtime.plan import ExecutionPlan

#: Plan-level execution modes the adaptive chooser can select.
ADAPTIVE_MODES = ("serial", "shard-parallel", "tile-parallel")

#: Backends whose column tiles draw from their own per-tile generators,
#: making concurrent tile execution bit-identical to the serial path.
#: The fused-table backends consume the RNG differently per draw, so
#: tile fan-out is never offered for them.
TILE_SAFE_BACKENDS = frozenset({"stochastic-packed", "stochastic-dense"})


@dataclass(frozen=True)
class CostCoefficients:
    """Measured constants of the runtime cost model.

    All times are seconds. ``window_cost_s`` is the serial cost of one
    sampled observation window; the remaining constants price the
    dispatch machinery each fan-out adds on top of the compute.
    ``break_even_windows`` is the plan size (total estimated windows)
    below which the chooser picks serial without further comparison —
    the explicit "tiny plans stop paying pool tax" threshold.
    ``source`` records where the numbers came from (``"default"`` or
    ``"calibrated"``) so saved files are self-describing.
    """

    window_cost_s: float = 6.0e-7
    stage_overhead_s: float = 3.0e-5
    shard_dispatch_s: float = 1.0e-3
    pool_warmup_s: float = 2.5e-2
    tile_dispatch_s: float = 3.0e-4
    break_even_windows: float = 6_000.0
    source: str = "default"

    def __post_init__(self) -> None:
        for name in (
            "window_cost_s",
            "stage_overhead_s",
            "shard_dispatch_s",
            "pool_warmup_s",
            "tile_dispatch_s",
            "break_even_windows",
        ):
            value = getattr(self, name)
            if not (value >= 0.0) or not math.isfinite(value):
                raise ValueError(f"{name} must be finite and >= 0, got {value!r}")
        if self.window_cost_s == 0.0:
            raise ValueError("window_cost_s must be > 0")

    # ------------------------------------------------------------------
    def as_dict(self) -> dict:
        return {
            "window_cost_s": self.window_cost_s,
            "stage_overhead_s": self.stage_overhead_s,
            "shard_dispatch_s": self.shard_dispatch_s,
            "pool_warmup_s": self.pool_warmup_s,
            "tile_dispatch_s": self.tile_dispatch_s,
            "break_even_windows": self.break_even_windows,
            "source": self.source,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "CostCoefficients":
        known = {k: payload[k] for k in cls.__dataclass_fields__ if k in payload}
        return cls(**known)

    def save(self, path) -> None:
        """Persist to ``path`` as JSON (the ``make bench`` refresh
        target and the ``REPRO_COST_COEFFICIENTS`` file format)."""
        with open(path, "w") as fh:
            fh.write(json.dumps(self.as_dict(), indent=2) + "\n")

    @classmethod
    def load(cls, path) -> "CostCoefficients":
        with open(path) as fh:
            payload = json.load(fh)
        if not isinstance(payload, dict):
            raise ValueError(f"{path}: expected a JSON object of coefficients")
        return cls.from_dict(payload)


@dataclass
class StageDecision:
    """What the adaptive chooser decided for one plan stage.

    ``mode`` is the execution the stage actually gets under the chosen
    plan-level mode (e.g. a single-tile stage inside a tile-parallel
    plan still runs serial). ``predicted_s`` and ``measured_s`` are
    both *aggregate* stage costs — the model's estimate of the total
    work the stage does summed across shards (and workers), and the
    telemetry's wall time summed the same way after execution — so the
    pair is directly comparable in every mode (fanning out splits the
    work across processes, it does not shrink it). The mode-level
    *wall-clock* comparison the chooser ranked lives in
    :attr:`AdaptiveChoice.predictions`.
    """

    stage: int
    kind: str
    mode: str
    cost_windows: float
    tile_width: int
    predicted_s: float
    measured_s: Optional[float] = None

    def as_dict(self) -> dict:
        return {
            "stage": self.stage,
            "kind": self.kind,
            "mode": self.mode,
            "cost_windows": self.cost_windows,
            "tile_width": self.tile_width,
            "predicted_s": self.predicted_s,
            "measured_s": self.measured_s,
        }


@dataclass
class AdaptiveChoice:
    """One chooser outcome: the plan-level mode, the per-mode wall-time
    predictions it compared, and the per-stage decision records."""

    mode: str
    predictions: Dict[str, float]
    stages: List[StageDecision]
    forced: bool = False
    reason: str = ""

    def as_dict(self) -> dict:
        return {
            "mode": self.mode,
            "predictions": dict(self.predictions),
            "forced": self.forced,
            "reason": self.reason,
            "stages": [s.as_dict() for s in self.stages],
        }


def candidate_modes(
    plan: ExecutionPlan,
    *,
    backend_name: Optional[str] = None,
    deterministic: bool = False,
    registered: Optional[Sequence[str]] = None,
) -> List[str]:
    """Execution modes that are *correct* for ``plan`` + backend.

    Serial is always a candidate. Shard fan-out needs more than one
    shard, seeds on every shard (workers re-derive the sampler state
    from them), and a registered backend name (workers resolve their
    strategy by name in their own process). Tile fan-out needs a
    stochastic backend whose tiles draw from per-tile generators
    (:data:`TILE_SAFE_BACKENDS`) and at least one stage that actually
    fans out. The chooser only ever ranks the modes this returns, which
    is what keeps every adaptive outcome bit-identical to serial.
    """
    modes = ["serial"]
    seeded = all(s.seed is not None for s in plan.shards)
    if backend_name is not None and seeded and len(plan) > 1:
        if registered is None:
            from repro.api.backends import available_backends, backend_aliases

            registered = list(available_backends()) + list(backend_aliases())
        if backend_name in registered:
            modes.append("shard-parallel")
    if (
        not deterministic
        and backend_name in TILE_SAFE_BACKENDS
        and plan.max_tile_width > 1
    ):
        modes.append("tile-parallel")
    return modes


class CostModel:
    """Predict plan wall time per fan-out mode and choose the cheapest.

    Stateless apart from its :class:`CostCoefficients`; one instance
    can serve any number of schedulers and sessions concurrently.
    """

    def __init__(self, coefficients: Optional[CostCoefficients] = None) -> None:
        self.coefficients = coefficients or CostCoefficients()

    # ------------------------------------------------------------------
    # Prediction
    # ------------------------------------------------------------------
    def predict(
        self,
        plan: ExecutionPlan,
        mode: str,
        *,
        workers: int = 1,
        warm: bool = False,
    ) -> float:
        """Predicted wall-clock seconds for ``plan`` under ``mode``.

        ``warm`` declares that the shard pool already exists (a daemon
        that prewarmed at startup, or any run after the first pooled
        one), so shard-parallel predictions skip the one-time
        ``pool_warmup_s`` charge.
        """
        if mode == "serial":
            return self._predict_serial(plan)
        if mode == "shard-parallel":
            return self._predict_shard(plan, workers, warm=warm)
        if mode == "tile-parallel":
            return self._predict_tile(plan, workers)
        raise ValueError(
            f"unknown mode {mode!r}; expected one of {', '.join(ADAPTIVE_MODES)}"
        )

    def _predict_serial(self, plan: ExecutionPlan) -> float:
        c = self.coefficients
        return plan.total_cost * c.window_cost_s + len(plan.tasks) * c.stage_overhead_s

    def _predict_shard(
        self, plan: ExecutionPlan, workers: int, *, warm: bool = False
    ) -> float:
        """Grouped warm-pool dispatch: the scheduler packs the shards
        into at most ``workers`` contiguous groups, submits one pool
        task per group, and each group's shards run stage-major in one
        vectorized pass. The makespan is the bigger of the heaviest
        single shard and the perfectly balanced split across groups;
        per-task stage overhead is paid once per group (not per shard —
        that amortization is why a single-worker pool can beat serial),
        dispatch once per group, and the pool construction cost only
        when the pool is cold."""
        c = self.coefficients
        g = max(1, min(workers, len(plan)))
        shard_windows: Dict[int, float] = {}
        for task in plan.tasks:
            shard_windows[task.shard] = shard_windows.get(task.shard, 0.0) + task.cost
        heaviest = max(shard_windows.values(), default=0.0)
        makespan = max(heaviest, plan.total_cost / g)
        tasks_per_shard = len(plan.tasks) / max(1, len(plan))
        return (
            makespan * c.window_cost_s
            + g * tasks_per_shard * c.stage_overhead_s
            + g * c.shard_dispatch_s
            + (0.0 if warm else c.pool_warmup_s)
        )

    def _predict_tile(self, plan: ExecutionPlan, workers: int) -> float:
        """Shards and stages stay serial; within each crossbar stage the
        column tiles run on ``workers`` threads, each paying a dispatch
        cost. Single-tile groups execute unwrapped (no dispatch)."""
        c = self.coefficients
        k = max(1, workers)
        total = 0.0
        for width, per_tile in self._tile_groups(plan):
            if width > 1:
                rounds = math.ceil(width / k)
                total += per_tile * rounds * c.window_cost_s
                total += width * c.tile_dispatch_s
            else:
                total += per_tile * c.window_cost_s
            total += c.stage_overhead_s
        return total

    @staticmethod
    def _tile_groups(plan: ExecutionPlan) -> List[Tuple[int, float]]:
        """``(tile_width, per_tile_windows)`` per (shard, stage) group,
        in plan order (tasks of one group share the same cost)."""
        groups: Dict[Tuple[int, int], Tuple[int, float]] = {}
        for task in plan.tasks:
            key = (task.shard, task.stage)
            width, per_tile = groups.get(key, (0, 0.0))
            groups[key] = (width + 1, task.cost)
        return list(groups.values())

    # ------------------------------------------------------------------
    # Choice
    # ------------------------------------------------------------------
    def choose(
        self,
        plan: ExecutionPlan,
        *,
        workers: int = 1,
        modes: Sequence[str] = ("serial",),
        force: Optional[str] = None,
        warm: bool = False,
    ) -> AdaptiveChoice:
        """Rank ``modes`` for ``plan`` and pick one.

        ``force`` overrides the comparison (the ``REPRO_FORCE_SCHEDULER``
        escape hatch) but must name one of the *candidate* modes — a
        mode that is unavailable for correctness reasons cannot be
        forced into. Without a force, plans below the break-even window
        count short-circuit to serial. ``warm`` relays whether the
        shard pool already exists (see :meth:`predict`).
        """
        if "serial" not in modes:
            raise ValueError("'serial' must always be a candidate mode")
        predictions = {
            mode: self.predict(plan, mode, workers=workers, warm=warm)
            for mode in modes
        }
        break_even = self.coefficients.break_even_windows
        if force is not None:
            if force not in predictions:
                raise ValueError(
                    f"forced mode {force!r} is not available for this plan/backend "
                    f"(candidates: {', '.join(sorted(predictions))})"
                )
            mode, forced = force, True
            reason = "forced via REPRO_FORCE_SCHEDULER"
        elif plan.total_cost < break_even:
            mode, forced = "serial", False
            reason = (
                f"plan cost {plan.total_cost:.0f} windows below "
                f"break-even {break_even:.0f}"
            )
        else:
            mode = min(predictions, key=lambda m: (predictions[m], m))
            forced = False
            reason = f"cheapest predicted wall time ({predictions[mode]:.4g}s)"
        stages = self._stage_decisions(plan, mode, workers)
        return AdaptiveChoice(
            mode=mode,
            predictions=predictions,
            stages=stages,
            forced=forced,
            reason=reason,
        )

    def _stage_decisions(
        self, plan: ExecutionPlan, mode: str, workers: int
    ) -> List[StageDecision]:
        c = self.coefficients
        stage_kind: Dict[int, str] = {}
        stage_windows: Dict[int, float] = {}
        stage_tasks: Dict[int, int] = {}
        for task in plan.tasks:
            stage_kind.setdefault(task.stage, task.kind)
            stage_windows[task.stage] = stage_windows.get(task.stage, 0.0) + task.cost
            stage_tasks[task.stage] = stage_tasks.get(task.stage, 0) + 1
        decisions: List[StageDecision] = []
        for stage in sorted(stage_kind):
            width = plan.tile_width(stage)
            windows = stage_windows[stage]
            n_tasks = stage_tasks[stage]
            # Aggregate estimates (total work, not wall-clock): what the
            # summed per-shard telemetry will measure after execution,
            # regardless of how many workers the work was split across.
            if mode == "shard-parallel":
                stage_mode = "shard-parallel"
                predicted = windows * c.window_cost_s + n_tasks * c.stage_overhead_s
            elif mode == "tile-parallel" and width > 1 and windows > 0:
                stage_mode = "tile-parallel"
                predicted = (
                    windows * c.window_cost_s
                    + n_tasks * c.tile_dispatch_s
                    + len(plan) * c.stage_overhead_s
                )
            else:
                stage_mode = "serial"
                predicted = windows * c.window_cost_s + n_tasks * c.stage_overhead_s
            decisions.append(
                StageDecision(
                    stage=stage,
                    kind=stage_kind[stage],
                    mode=stage_mode,
                    cost_windows=windows,
                    tile_width=width,
                    predicted_s=predicted,
                )
            )
        return decisions


# ----------------------------------------------------------------------
# Calibration: refit the coefficients from measured telemetry.
# ----------------------------------------------------------------------
def calibrate(
    engine,
    images,
    *,
    backend: str = "stochastic",
    workers: int = 2,
    repeats: int = 2,
    probe_pool: bool = True,
    probe_tiles: bool = True,
    seed: int = 0,
    pool_scheduler=None,
    tile_scheduler=None,
) -> CostModel:
    """Fit :class:`CostCoefficients` from the engine's own telemetry.

    Runs a serial probe (``repeats`` timed passes after one warm-up) to
    fit ``window_cost_s`` from the measured
    :class:`~repro.api.results.LayerTelemetry` (crossbar wall time per
    window) and ``stage_overhead_s`` from the serial wall time left
    over once the window cost is accounted for — the per-task fixed
    cost grouped dispatch amortizes. A single-group pool probe (every
    shard in one warm-pool submission) then isolates
    ``shard_dispatch_s`` as what one pooled pass costs beyond its
    predicted compute, and the pool construction itself is timed
    directly for ``pool_warmup_s``. Returns a :class:`CostModel` whose
    coefficients report ``source="calibrated"``.

    ``pool_scheduler`` / ``tile_scheduler`` reuse already-constructed
    (ideally warm) schedulers instead of building and tearing down
    throwaway pools — a calibration pass against a serving daemon's own
    pool costs milliseconds instead of a pool spin-up. When a warm pool
    is supplied, the one-time warmup cannot be observed, so
    ``pool_warmup_s`` keeps its default.

    The probes execute through the public Session surface, so what gets
    measured is exactly what the adaptive scheduler will dispatch.
    """
    # Imported here: the scheduler module imports this one at class
    # definition time, so a module-level import would be circular.
    import numpy as np

    from repro.runtime.plan import compile_plan, plan_shards
    from repro.runtime.scheduler import (
        ShardParallelScheduler,
        TileParallelScheduler,
    )

    images = np.asarray(images)
    defaults = CostCoefficients()

    def _timed_run(session):
        start = time.perf_counter()
        result = session.run(images)
        return result, time.perf_counter() - start

    # --- serial probe: window cost + per-task overhead -----------------
    with engine.session(seed=seed, backend=backend) as session:
        session.run(images)  # warm sampler tables / caches once
        best_windows_s = math.inf
        serial_wall = math.inf
        total_windows = 0
        n_shards = 1
        for _ in range(max(1, repeats)):
            result, wall = _timed_run(session)
            serial_wall = min(serial_wall, wall)
            n_shards = result.micro_batches
            total_windows = result.total_windows
            crossbar_wall = sum(
                t.wall_time_s for t in result.layers if t.windows > 0
            )
            if total_windows > 0 and crossbar_wall > 0:
                best_windows_s = min(best_windows_s, crossbar_wall / total_windows)
    window_cost_s = (
        best_windows_s if math.isfinite(best_windows_s) else defaults.window_cost_s
    )
    # The real task count (per-tile granularity, matching the
    # predictor) so the leftover serial time maps onto the same
    # ``len(plan.tasks)`` the chooser will multiply by.
    plan = compile_plan(
        engine.network,
        plan_shards(len(images), engine.micro_batch),
        input_shape=images.shape[1:],
    )
    n_tasks = max(1, len(plan.tasks))
    leftover = max(serial_wall - total_windows * window_cost_s, 0.0)
    stage_overhead_s = max(leftover / n_tasks, 1e-7)

    # --- pool probe: per-group dispatch + measured warmup --------------
    shard_dispatch_s = defaults.shard_dispatch_s
    pool_warmup_s = defaults.pool_warmup_s
    if probe_pool and n_shards > 1:
        owned_pool = pool_scheduler is None
        scheduler = pool_scheduler or ShardParallelScheduler(
            workers=1, inner=backend
        )
        try:
            if scheduler.pool_generation == 0:
                start = time.perf_counter()
                scheduler.warm(engine.network)
                pool_warmup_s = max(time.perf_counter() - start, 1e-6)
            with engine.session(
                seed=seed, backend=backend, scheduler=scheduler
            ) as session:
                session.run(images)  # settle the pooled path once
                pool_wall = math.inf
                # The first post-warm waves still pay one-off costs
                # (copy-on-write faults, scratch sizing); a single
                # sample would fold that noise into the dispatch fit,
                # so always take the best of a few.
                for _ in range(max(repeats, 3)):
                    result, wall = _timed_run(session)
                    pool_wall = min(pool_wall, wall)
            g = max(1, min(scheduler.workers, n_shards))
            compute_s = (
                result.total_windows * window_cost_s / g
                + g * (n_tasks / n_shards) * stage_overhead_s
            )
            shard_dispatch_s = max((pool_wall - compute_s) / g, 1e-6)
        finally:
            if owned_pool:
                scheduler.close()

    # --- tile probe: per-tile thread dispatch --------------------------
    tile_dispatch_s = defaults.tile_dispatch_s
    tile_widths = [
        layer.n_col_tiles for layer in engine.tiled_layers if layer.n_col_tiles > 1
    ]
    if probe_tiles and tile_widths:
        with engine.session(seed=seed, backend="stochastic-packed") as session:
            session.run(images)
            _, packed_wall = _timed_run(session)
        owned_tile = tile_scheduler is None
        scheduler = tile_scheduler or TileParallelScheduler(workers=workers)
        try:
            with engine.session(
                seed=seed, backend="stochastic-packed", scheduler=scheduler
            ) as session:
                session.run(images)
                _, tiled_wall = _timed_run(session)
        finally:
            if owned_tile:
                scheduler.close()
        n_tile_tasks = n_shards * sum(tile_widths)
        overhead = max(tiled_wall - packed_wall / max(1, workers), 0.0)
        tile_dispatch_s = max(overhead / max(1, n_tile_tasks), 1e-6)

    # Break-even: scale the probe plan by alpha until the warm grouped
    # fan-out's savings pay for its dispatch —
    #   alpha * [W*wc*(1 - 1/g) + T*so*(1 - g/S)] = g*sd
    # (windows split across g groups; per-task overhead paid g/S times;
    # one dispatch per group). Denominator <= 0 means this plan shape
    # never profits at these coefficients; keep the default threshold.
    g = max(1, min(workers, n_shards))
    savings_per_alpha = total_windows * window_cost_s * (
        1.0 - 1.0 / g
    ) + n_tasks * stage_overhead_s * (1.0 - g / n_shards)
    if savings_per_alpha > 0 and total_windows > 0:
        alpha = (g * shard_dispatch_s) / savings_per_alpha
        break_even_windows = alpha * total_windows
    else:
        break_even_windows = defaults.break_even_windows

    coefficients = replace(
        defaults,
        window_cost_s=window_cost_s,
        stage_overhead_s=stage_overhead_s,
        shard_dispatch_s=shard_dispatch_s,
        pool_warmup_s=pool_warmup_s,
        tile_dispatch_s=tile_dispatch_s,
        break_even_windows=break_even_windows,
        source="calibrated",
    )
    return CostModel(coefficients)


def load_cost_model(source=None) -> CostModel:
    """Resolve ``source`` into a :class:`CostModel`.

    ``None`` checks the ``REPRO_COST_COEFFICIENTS`` environment variable
    for a saved-coefficients path and falls back to the defaults; a
    path string loads that file; a :class:`CostCoefficients` wraps it; a
    :class:`CostModel` passes through.
    """
    if isinstance(source, CostModel):
        return source
    if isinstance(source, CostCoefficients):
        return CostModel(source)
    if source is None:
        configured = env_path("REPRO_COST_COEFFICIENTS")
        if configured:
            return CostModel(CostCoefficients.load(configured))
        return CostModel()
    if isinstance(source, (str, os.PathLike)):
        return CostModel(CostCoefficients.load(source))
    raise TypeError(
        f"cannot build a CostModel from {type(source).__name__}; pass a "
        f"CostModel, CostCoefficients, coefficients-JSON path, or None"
    )
