"""Long-lived queued serving with deadline-based batch coalescing.

:class:`ServingDaemon` is the runtime's serving loop: a bounded request
queue, a two-stage consumer pipeline, and a coalescing window. Requests
that arrive within ``coalesce_window_s`` of each other are merged into
one **wave** — their activation buffers concatenated, their shard plans
appended — and executed in a single sweep through the scheduler, which
amortizes lock round-trips, pool submissions, and pipeline warmup
across requests (the single biggest lever for the RNG-bound stochastic
path, per the kernel benchmarks).

The pipeline has two consumer threads: the **assembler** pulls queued
requests, coalesces them into waves, and draws every request's shard
plan (and therefore its seeds) in arrival order; the **executor** pulls
planned waves from a small bounded handoff queue and runs them. Wave
*k + 1* therefore assembles while wave *k* executes, hiding coalescing
and planning latency behind execution. The split cannot perturb
results: all generator draws happen on the assembler in arrival order
(exactly the serial draw sequence), and the handoff queue is FIFO, so
execution order matches assembly order.

Coalescing is a *scheduling* decision, never a semantics change. Each
request keeps its own shard boundaries and its own seeds: the wave plan
is :func:`~repro.runtime.plan.concat_plans` of the per-request plans,
and seeds are drawn request by request in arrival order — exactly the
draws a serial :class:`~repro.api.Session` would make running the same
requests one at a time. Coalesced logits are therefore **bit-identical
to uncoalesced** execution for a seeded daemon:

* default mode: one session seed; waves replay
  ``Session(engine, seed=...).run_many(requests)`` bit for bit;
* ``seed_per_request=True``: each request gets a child seed drawn in
  arrival order (the :class:`~repro.api.serving.Serving` front-end's
  contract), replaying per-request child-seeded sessions bit for bit;
* an explicit ``seed=`` on :meth:`submit` pins one request's plan
  regardless of mode.

A request whose execution raises fails *its own future only* — the
wave re-runs request by request from the already-drawn plans, so one
poisoned request can neither wedge the queue nor perturb its
neighbours' randomness.

Failures are *classified* (:mod:`repro.runtime.recovery`): the runtime
scheduler retries and serially rescues infrastructure failures before
the daemon ever sees them (counted in :attr:`DaemonStats.retries` /
:attr:`DaemonStats.recoveries`); fatal payload errors land on the
request's future with their original traceback chained. Admission is
configurable (block vs reject-with-``QueueFull``), and a supervisor
restarts the consumer thread if a wave's error handling is ever
breached (:attr:`DaemonStats.consumer_restarts`) — queued requests
survive the restart.
"""

from __future__ import annotations

import queue
import threading
import time
from concurrent.futures import Future
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.api.backends import get_backend, resolve_strategy
from repro.api.results import InferenceResult, ServingReport, merge_telemetry
from repro.runtime import faults
from repro.runtime.plan import ShardPlan, compile_plan, concat_plans, plan_shards
from repro.runtime.recovery import QueueFull, classified
from repro.runtime.scheduler import SerialScheduler, resolve_scheduler
from repro.utils.rng import SeedLike, new_rng

#: Sentinel mirroring :data:`repro.api.engine._INHERIT` without the
#: circular import (the daemon is below the api facade).
_INHERIT = object()

#: Assembler -> executor handoff sentinel: no more waves are coming.
_SENTINEL = object()


@dataclass
class DaemonStats:
    """Counters of one daemon's lifetime (snapshot via
    :attr:`ServingDaemon.stats`).

    ``decisions`` and ``mode_waves`` are populated only when the daemon
    runs with an adaptive runtime scheduler: ``decisions`` holds the
    most recent wave's per-stage decision records (stage -> chosen mode
    + predicted vs measured cost, as dicts), and ``mode_waves`` counts
    executed waves by the plan-level mode the chooser picked — the
    telemetry that shows coalescing flipping small serial requests into
    fanned-out waves.

    ``queue_depth`` and ``in_flight`` are *live gauges*, not lifetime
    counters: requests sitting in the admission queue right now, and
    requests accepted but not yet resolved (queued + assembling +
    executing). The network tier reads them to shed load before the
    bounded queue would block its event loop.
    """

    submitted: int = 0
    completed: int = 0
    failed: int = 0
    waves: int = 0
    coalesced_requests: int = 0  # requests that shared a wave with others
    max_wave_requests: int = 0
    total_images: int = 0
    queue_high_water: int = 0
    rejected: int = 0  # submissions refused at admission (QueueFull)
    retries: int = 0  # pool attempts re-submitted by the recovery loop
    recoveries: int = 0  # requests that completed via retry or fallback
    consumer_restarts: int = 0  # supervisor restarts of a crashed consumer
    queue_depth: int = 0  # gauge: requests in the admission queue now
    in_flight: int = 0  # gauge: accepted but unresolved requests now
    recovery: Optional[dict] = None  # latest wave's RecoveryLog
    decisions: Optional[List[dict]] = None  # latest wave's stage decisions
    mode_waves: Dict[str, int] = field(default_factory=dict)

    def as_dict(self) -> dict:
        payload = dict(self.__dict__)
        payload["mode_waves"] = dict(self.mode_waves)
        if self.recovery is not None:
            payload["recovery"] = dict(self.recovery)
        if self.decisions is not None:
            payload["decisions"] = [dict(d) for d in self.decisions]
        return payload


@dataclass
class _Request:
    """One queued request: payload + the future its caller holds."""

    images: np.ndarray
    labels: Optional[np.ndarray]
    future: Future
    seed: Optional[int] = None  # explicit per-request seed (optional)
    plan: Optional[ShardPlan] = None  # assigned at wave assembly
    rows: int = 0
    #: Optional lifecycle hook: called with (stage, detail) at "queued"
    #: (submission, before enqueue), "planned" (shard plan drawn), and
    #: "executing" (wave dispatched). The network tier turns these into
    #: PROGRESS frames.
    progress: Optional[Callable[[str, dict], None]] = None


class ServingDaemon:
    """Queued inference serving over one engine, with batch coalescing.

    Parameters
    ----------
    engine:
        The :class:`~repro.api.Engine` to serve.
    backend:
        Execution strategy shared by every wave — a registered name or
        a ready-made instance (pass a configured
        :class:`~repro.api.parallel.StochasticParallelBackend` so waves
        fan out over its worker pool). Defaults to the engine's backend.
    seed:
        Seeds the daemon generator. A seeded daemon is deterministic:
        request plans draw from the generator in arrival order, so the
        results replay a serial session (or per-request child-seeded
        sessions, with ``seed_per_request=True``) bit for bit.
    seed_per_request:
        False (default): plans draw straight from the daemon generator
        — coalesced output is bit-identical to
        ``Session(seed=...).run_many`` of the same requests in order.
        True: each request first draws a child seed (the
        :class:`~repro.api.serving.Serving` front-end convention).
    micro_batch:
        Per-request shard size (inherits the engine default).
    max_queue:
        Bound on queued requests; what happens when it is full is the
        ``admission`` policy's call.
    admission:
        ``"block"`` (default): a full queue makes :meth:`submit` wait
        (raising :class:`~repro.runtime.recovery.QueueFull` after its
        ``timeout``, if one was given). ``"reject"``: a full queue
        fails the submission immediately with ``QueueFull`` — shed
        load at the door instead of stacking callers. Rejections count
        in :attr:`DaemonStats.rejected`.
    deadline_s:
        Per-request execution deadline handed to the runtime scheduler
        (``None`` = none). A wave that blows it abandons its stragglers
        and re-executes serially — bit-identical, with the recovery
        recorded in :attr:`DaemonStats.recovery`.
    coalesce_window_s:
        How long the consumer waits for follow-up requests after the
        first of a wave. 0 still coalesces whatever is already queued.
    max_wave_images:
        Image-count ceiling per wave (the window closes early once
        reached).
    scheduler:
        An in-process runtime scheduler name or instance the waves
        execute through — pass ``"adaptive"`` so each *coalesced wave's*
        combined plan goes through the cost-model chooser: a singleton
        request below the break-even threshold runs serial, while a
        coalesced wave whose merged plan crosses it fans out over the
        pool. Requires a layer-level backend. The chooser's per-stage
        decisions surface in :attr:`DaemonStats.decisions` /
        :attr:`DaemonStats.mode_waves`. ``None`` keeps the classic
        strategy-driven execution.
    prewarm:
        True builds the scheduler's worker pool (and shm ring) at
        construction, before any traffic — pool spin-up costs tens of
        milliseconds, and paying it at startup keeps it out of the
        first wave's latency *and* out of the adaptive chooser's
        predictions (a warm pool competes on marginal cost, so the
        chooser can route the very first wave to the pool). Requires a
        pool-backed scheduler (e.g. ``"adaptive"``). The pool persists
        across waves: its generation (see
        :meth:`~repro.runtime.scheduler.ShardParallelScheduler.pool_generation`)
        stays constant for the daemon's lifetime unless a worker crash
        forces a rebuild.
    name:
        A label for this daemon instance. Routers serving several
        replicas name each one (``replica-0`` ...); the name is part of
        the ``daemon.request`` fault-point context, so a fault plan can
        target one replica (``match={"daemon": "replica-1"}``).
    """

    def __init__(
        self,
        engine,
        *,
        backend=None,
        seed: SeedLike = None,
        seed_per_request: bool = False,
        micro_batch=_INHERIT,
        max_queue: int = 64,
        admission: str = "block",
        deadline_s: Optional[float] = None,
        coalesce_window_s: float = 0.002,
        max_wave_images: int = 4096,
        scheduler=None,
        prewarm: bool = False,
        name: str = "daemon",
    ) -> None:
        if max_queue < 1:
            raise ValueError(f"max_queue must be >= 1, got {max_queue}")
        if admission not in ("block", "reject"):
            raise ValueError(
                f"admission must be 'block' or 'reject', got {admission!r}"
            )
        if deadline_s is not None and deadline_s <= 0:
            raise ValueError(f"deadline_s must be > 0, got {deadline_s}")
        if coalesce_window_s < 0:
            raise ValueError(
                f"coalesce_window_s must be >= 0, got {coalesce_window_s}"
            )
        self.engine = engine
        self.name = str(name)
        source = backend if backend is not None else engine.backend
        self._strategy, self._owns_strategy = resolve_strategy(source)
        self.backend = getattr(self._strategy, "name", str(source))
        if scheduler is None:
            self._scheduler, self._owns_scheduler = None, False
        else:
            self._scheduler, self._owns_scheduler = resolve_scheduler(scheduler)
            if not hasattr(self._scheduler, "run_shards"):
                raise ValueError(
                    f"daemon scheduler "
                    f"{getattr(self._scheduler, 'name', scheduler)!r} must "
                    f"implement the per-shard run_shards protocol (the wave "
                    f"results are sliced back per request)"
                )
            if not hasattr(self._strategy, "run_layer"):
                raise ValueError(
                    f"a daemon scheduler executes in-process and needs a "
                    f"layer-level backend, but {self.backend!r} is "
                    f"shard-level (run_plan only)"
                )
            self._align_pool_scheduler(backend)
        if prewarm:
            warm = getattr(self._scheduler, "warm", None)
            if warm is None:
                raise ValueError(
                    "prewarm=True needs a pool-backed scheduler (e.g. "
                    "'adaptive' or a ShardParallelScheduler instance), got "
                    f"{getattr(self._scheduler, 'name', scheduler)!r}"
                )
            try:
                warm(engine.network, inner=self.backend)
            except TypeError:  # plain pool schedulers take no inner
                warm(engine.network)
        self.micro_batch = (
            engine.micro_batch if micro_batch is _INHERIT else micro_batch
        )
        self.seed_per_request = bool(seed_per_request)
        self._seeded = seed is not None
        self.rng = new_rng(seed)
        self.admission = admission
        self.deadline_s = deadline_s
        self.coalesce_window_s = float(coalesce_window_s)
        self.max_wave_images = int(max_wave_images)
        self._queue: "queue.Queue[_Request]" = queue.Queue(maxsize=max_queue)
        self._serial = SerialScheduler()
        self._stats = DaemonStats()
        self._stats_lock = threading.Lock()
        self._inflight = 0
        self._closing = False
        self._drain = True
        self._closed = False
        self._abort = False
        self._wave_recovery: Optional[dict] = None
        # Two-stage consumer pipeline: the assembler coalesces + plans
        # (all generator draws, in arrival order), the executor runs
        # planned waves — wave k+1 assembles while wave k executes. A
        # small handoff bound keeps planning at most two waves ahead.
        self._handoff: "queue.Queue" = queue.Queue(maxsize=2)
        self._assembler = threading.Thread(
            target=self._supervise,
            args=(self._assemble_loop,),
            name="repro-daemon-assembler",
            daemon=True,
        )
        self._executor = threading.Thread(
            target=self._supervise,
            args=(self._execute_loop,),
            name="repro-daemon-executor",
            daemon=True,
        )
        self._assembler.start()
        self._executor.start()

    # ------------------------------------------------------------------
    # Submission side
    # ------------------------------------------------------------------
    def submit(
        self,
        images: np.ndarray,
        labels=None,
        *,
        seed: Optional[int] = None,
        timeout: Optional[float] = None,
        progress: Optional[Callable[[str, dict], None]] = None,
    ) -> Future:
        """Enqueue one request; returns a Future of its
        :class:`~repro.api.results.InferenceResult`.

        Admission is policy-driven: ``admission="block"`` waits out a
        full queue (:class:`~repro.runtime.recovery.QueueFull` — a
        ``queue.Full`` subclass — after ``timeout`` seconds, if given);
        ``admission="reject"`` raises ``QueueFull`` immediately.
        Malformed requests (non-batched arrays) are rejected here, in
        the caller's thread.

        ``progress`` is an optional lifecycle hook called with
        ``(stage, detail)`` as the request moves through the pipeline —
        ``"queued"`` at submission (just before the request enters the
        queue, so it always precedes later stages; if admission then
        rejects the request no further stages fire), ``"planned"`` when
        its shard plan has been drawn, ``"executing"`` as its wave is
        dispatched. It runs on daemon threads and must be cheap and
        non-blocking; the network tier bridges it into PROGRESS frames.
        """
        return self._enqueue(
            images,
            labels,
            seed=seed,
            block=self.admission == "block",
            timeout=timeout,
            progress=progress,
        )

    def try_submit(
        self,
        images: np.ndarray,
        labels=None,
        *,
        seed: Optional[int] = None,
        progress: Optional[Callable[[str, dict], None]] = None,
    ) -> Future:
        """Non-blocking :meth:`submit`: enqueue if there is room *right
        now*, raise :class:`~repro.runtime.recovery.QueueFull`
        otherwise — regardless of the daemon's ``admission`` policy.

        This is the submission path for callers that must never stall
        (the asyncio network tier bridges every decoded request through
        here, turning a full queue into a retryable wire error instead
        of a blocked event loop). Rejections count in
        :attr:`DaemonStats.rejected`.
        """
        return self._enqueue(
            images, labels, seed=seed, block=False, timeout=None, progress=progress
        )

    def _enqueue(
        self,
        images: np.ndarray,
        labels,
        *,
        seed: Optional[int],
        block: bool,
        timeout: Optional[float],
        progress: Optional[Callable[[str, dict], None]] = None,
    ) -> Future:
        if self._closing or self._closed:
            raise RuntimeError("cannot submit to a closed ServingDaemon")
        x = np.asarray(images)
        if x.ndim < 2:
            raise ValueError(
                f"images must be batched (N, ...), got shape {x.shape}"
            )
        request = _Request(
            images=x,
            labels=None if labels is None else np.asarray(labels),
            future=Future(),
            seed=None if seed is None else int(seed),
            progress=progress,
        )
        # "queued" must fire before the put: once the request is on the
        # queue the assembler thread can emit "planned"/"executing", and
        # notifying afterwards would let those overtake "queued". If
        # admission then rejects the request, QueueFull propagates and
        # no further stages fire.
        self._notify(request, "queued", {"rows": x.shape[0]})
        try:
            if block:
                self._queue.put(request, timeout=timeout)
            else:
                self._queue.put_nowait(request)
        except queue.Full:
            with self._stats_lock:
                self._stats.rejected += 1
            raise QueueFull(
                f"ServingDaemon queue is at capacity "
                f"({self._queue.maxsize} requests; admission="
                f"{self.admission!r})"
            ) from None
        with self._stats_lock:
            self._stats.submitted += 1
            self._inflight += 1
            self._stats.queue_high_water = max(
                self._stats.queue_high_water, self._queue.qsize()
            )
        return request.future

    @staticmethod
    def _notify(item: _Request, stage: str, detail: dict) -> None:
        """Fire a request's progress hook, swallowing its errors — a
        broken observer must never fail the request it watches."""
        if item.progress is None:
            return
        try:
            item.progress(stage, detail)
        # taxonomy: fatal — observer bugs are dropped, never propagated
        except Exception:  # noqa: BLE001 - observer isolation
            pass

    def run_many(
        self,
        requests: Sequence[np.ndarray],
        labels: Optional[Sequence] = None,
    ) -> List[InferenceResult]:
        """Submit a batch of requests and wait for all results (in
        submission order). An empty batch returns an empty list."""
        if labels is None:
            labels = [None] * len(requests)
        elif len(labels) != len(requests):
            raise ValueError(
                f"labels length {len(labels)} != requests length {len(requests)}"
            )
        futures = [
            self.submit(request, labels=request_labels)
            for request, request_labels in zip(requests, labels)
        ]
        return [future.result() for future in futures]

    def serve(
        self,
        requests: Sequence[np.ndarray],
        labels: Optional[Sequence] = None,
    ) -> ServingReport:
        """:meth:`run_many` wrapped in a throughput
        :class:`~repro.api.results.ServingReport` (mirrors
        :meth:`repro.api.serving.Serving.serve`)."""
        start = time.perf_counter()
        before = self.stats.waves
        results = self.run_many(requests, labels=labels)
        return ServingReport(
            results=results,
            wall_time_s=time.perf_counter() - start,
            workers=getattr(self._strategy, "workers", 1),
            backend=self.backend,
            waves=self.stats.waves - before,
        )

    # ------------------------------------------------------------------
    # Consumer side
    # ------------------------------------------------------------------
    def _supervise(self, loop_fn) -> None:
        """Consumer thread target: keep one pipeline stage alive.

        A stage crash (anything an individual wave's own error handling
        did not absorb) is counted, and the loop restarts — requests
        already queued stay queued and are served by the reincarnation.
        ``BaseException`` (``KeyboardInterrupt``, ``SystemExit``) stops
        the daemon instead: the abort flag is raised and everything
        still queued or handed off is failed, so no caller is left
        holding a future that can never resolve.
        """
        while True:
            try:
                loop_fn()
                return
            # taxonomy: retryable — any consumer crash restarts the loop
            except Exception:  # noqa: BLE001 - the supervisor's job
                if self._closing or self._closed:
                    return
                with self._stats_lock:
                    self._stats.consumer_restarts += 1
            # taxonomy: fatal — KeyboardInterrupt/SystemExit stop the daemon
            except BaseException as exc:
                self._abort = True
                self._abort_queued(exc)
                raise

    def _abort_queued(self, exc: BaseException) -> None:
        """Fail everything still queued or handed off (a pipeline stage
        is going away for good)."""
        for source in (self._queue, self._handoff):
            while True:
                try:
                    item = source.get_nowait()
                except queue.Empty:
                    break
                wave = item if isinstance(item, list) else [item]
                for request in wave:
                    if isinstance(request, _Request):
                        self._fail(
                            request,
                            RuntimeError(
                                f"ServingDaemon consumer aborted: {exc!r}"
                            ),
                        )

    # -- stage 1: assembler --------------------------------------------
    def _assemble_loop(self) -> None:
        """Coalesce queued requests into waves, draw their plans in
        arrival order, and hand the planned waves to the executor."""
        while not self._abort:
            faults.fault_point("daemon.consumer")
            try:
                first = self._queue.get(timeout=0.02)
            except queue.Empty:
                if self._closing:
                    break
                continue
            wave = [first]
            rows = first.images.shape[0]
            deadline = time.monotonic() + self.coalesce_window_s
            while rows < self.max_wave_images:
                remaining = deadline - time.monotonic()
                try:
                    if remaining > 0:
                        item = self._queue.get(timeout=remaining)
                    else:
                        item = self._queue.get_nowait()
                except queue.Empty:
                    break
                wave.append(item)
                rows += item.images.shape[0]
            self._plan_and_hand_off(wave)
        # Drain or fail whatever is still queued after the stop signal.
        while not self._abort:
            try:
                item = self._queue.get_nowait()
            except queue.Empty:
                break
            if self._drain:
                self._plan_and_hand_off([item])
            else:
                self._fail(item, RuntimeError("ServingDaemon closed"))
        self._hand_off(_SENTINEL)

    def _plan_and_hand_off(self, wave: List[_Request]) -> None:
        """Plan one wave; a failure that escapes per-request planning
        fails the whole wave's futures before propagating — a consumer
        crash must never strand a caller."""
        try:
            ready = self._plan_wave(wave)
        except BaseException as exc:
            for item in wave:
                self._fail(item, classified(exc))
            raise
        if ready:
            self._hand_off(ready)

    def _hand_off(self, ready) -> None:
        """Blocking put into the bounded handoff queue, with an escape
        hatch: if the executor has aborted for good, fail the wave
        instead of blocking forever."""
        while True:
            try:
                self._handoff.put(ready, timeout=0.1)
                return
            except queue.Full:
                if self._abort:
                    if isinstance(ready, list):
                        for item in ready:
                            self._fail(
                                item,
                                RuntimeError(
                                    "ServingDaemon executor aborted"
                                ),
                            )
                    return

    # -- stage 2: executor ---------------------------------------------
    def _execute_loop(self) -> None:
        """Run planned waves in handoff (FIFO = assembly) order."""
        while True:
            try:
                ready = self._handoff.get(timeout=0.02)
            except queue.Empty:
                if self._abort:
                    return
                if self._closing and not self._assembler.is_alive():
                    # Backstop: the assembler died without a sentinel
                    # (its supervisor gave up mid-close).
                    return
                continue
            if ready is _SENTINEL:
                return
            self._guarded_execute(ready)

    def _guarded_execute(self, ready: List[_Request]) -> None:
        try:
            for item in ready:
                self._notify(
                    item, "executing", {"wave_requests": len(ready)}
                )
            self._execute_wave(ready)
        except BaseException as exc:
            for item in ready:
                self._fail(item, classified(exc))
            raise

    def _align_pool_scheduler(self, requested_backend) -> None:
        """Keep a pool scheduler's worker-side execution consistent
        with the daemon's backend — never silently run something else
        (mirrors :meth:`repro.api.Session._align_pool_scheduler`).

        Pool schedulers (those carrying an ``inner`` backend name)
        ignore the in-process strategy: their workers resolve ``inner``
        by name. A scheduler the daemon built from a name adopts the
        daemon backend as ``inner``; a caller-configured instance wins
        instead — the daemon relabels itself so results report what
        actually executed, and an explicitly conflicting ``backend=``
        is rejected rather than dropped. Schedulers without ``inner``
        (serial/tile/adaptive) execute the daemon's strategy directly.
        """
        inner = getattr(self._scheduler, "inner", None)
        if inner is None:
            return
        if self._owns_scheduler:
            try:
                get_backend(self.backend, allow_override=False)
            except KeyError as exc:
                raise ValueError(
                    f"backend {self.backend!r} is not a registered name; pool "
                    f"workers resolve their strategy by name — register it or "
                    f"pass a configured scheduler instance (inner=...)"
                ) from exc
            self._scheduler.inner = self.backend
        elif requested_backend is not None and self.backend != inner:
            raise ValueError(
                f"daemon backend {self.backend!r} conflicts with the "
                f"scheduler's inner backend {inner!r}; configure one of them"
            )
        else:
            self.backend = inner

    def _plan_request(self, n: int) -> ShardPlan:
        """One request's shard plan, drawn in arrival order.

        The draw pattern exactly replays the uncoalesced references:
        session mode consumes the daemon generator the way successive
        ``Session.run`` calls would; per-request mode first derives a
        child seed the way :class:`~repro.api.serving.Serving` does.
        Unseeded daemons plan from fresh entropy when the strategy
        needs real seeds (process pools), seedless shards otherwise
        (continuing the network's compile-time streams, like an
        unseeded serial session).
        """
        if self.seed_per_request:
            child = int(self.rng.integers(0, 2**63 - 1))
            return plan_shards(n, self.micro_batch, rng=new_rng(child))
        if self._seeded:
            return plan_shards(n, self.micro_batch, rng=self.rng)
        if hasattr(self._strategy, "run_plan") or hasattr(
            self._strategy, "run_shards"
        ):
            return plan_shards(n, self.micro_batch, rng=new_rng(None))
        if getattr(self._scheduler, "requires_seeds", False):
            # The adaptive chooser may send this plan to the process
            # pool, where seedless shards would replay every worker's
            # identical compile-time streams.
            return plan_shards(n, self.micro_batch, rng=new_rng(None))
        return plan_shards(n, self.micro_batch)

    def _plan_wave(self, wave: List[_Request]) -> List[_Request]:
        """Plan every request in arrival order (isolating per-request
        failures so a bad payload cannot consume a neighbour's seeds).
        Runs on the assembler — the only thread that ever draws from
        the daemon generator."""
        ready: List[_Request] = []
        for item in wave:
            try:
                item.rows = item.images.shape[0]
                if item.seed is not None:
                    item.plan = plan_shards(
                        item.rows, self.micro_batch, rng=new_rng(item.seed)
                    )
                else:
                    item.plan = self._plan_request(item.rows)
                # After the plan (and therefore this request's seeds)
                # has been drawn: a poisoned request must never perturb
                # its neighbours' randomness.
                faults.fault_point(
                    "daemon.request", rows=item.rows, daemon=self.name
                )
                self._notify(
                    item, "planned", {"shards": len(item.plan)}
                )
                ready.append(item)
            except Exception as exc:  # noqa: BLE001 - forwarded to caller
                self._fail(item, classified(exc))
        if ready:
            with self._stats_lock:
                self._stats.waves += 1
                self._stats.max_wave_requests = max(
                    self._stats.max_wave_requests, len(ready)
                )
                if len(ready) > 1:
                    self._stats.coalesced_requests += len(ready)
        return ready

    def _execute_wave(self, ready: List[_Request]) -> None:
        # One coalesced execution; on any failure fall back to
        # request-by-request execution of the already-drawn plans so
        # only the offending request fails. (The scheduler has already
        # retried / serially rescued everything retryable by the time
        # an exception reaches this level.) A merged-only strategy
        # (bare ``run_plan``, no per-shard protocol) cannot be sliced
        # back into per-request results, so its waves run per request.
        try:
            if len(ready) == 1 or not self._can_slice():
                for item in ready:
                    self._run_single(item)
                return
            combined = concat_plans([item.plan for item in ready])
            x = np.concatenate([item.images for item in ready], axis=0)
            start = time.perf_counter()
            outputs = self._execute_shards(x, combined)
            wall = time.perf_counter() - start
            self._slice_results(ready, outputs, wall)
        # taxonomy: retryable — falls back to per-request execution,
        # where _run_single classifies each failure individually
        except Exception:  # taxonomy: see above
            for item in ready:
                if not item.future.done():
                    self._run_single(item)

    def _can_slice(self) -> bool:
        strategy = self._strategy
        return hasattr(strategy, "run_shards") or not hasattr(strategy, "run_plan")

    def _run_single(self, item: _Request) -> None:
        try:
            start = time.perf_counter()
            if self._can_slice():
                outputs = self._execute_shards(item.images, item.plan)
            else:
                logits, telemetry = self._strategy.run_plan(
                    self.engine.network, item.images, item.plan
                )
                outputs = None
            wall = time.perf_counter() - start
            if outputs is not None:
                self._slice_results([item], outputs, wall)
            else:
                self._finish(item, logits, telemetry, len(item.plan), wall)
        except Exception as exc:  # noqa: BLE001 - forwarded to caller
            self._fail(item, classified(exc))

    def _execute_shards(self, x: np.ndarray, plan: ShardPlan):
        """Per-shard (logits, telemetry) pairs for one buffer + plan."""
        strategy = self._strategy
        self._wave_recovery = None
        if self._scheduler is not None:
            exec_plan = plan
            if getattr(self._scheduler, "needs_task_graph", False):
                exec_plan = compile_plan(
                    self.engine.network, plan, input_shape=np.asarray(x).shape[1:]
                )
            outputs = self._scheduler.run_shards(
                self.engine.network,
                x,
                exec_plan,
                strategy=strategy,
                exec_lock=self.engine._exec_lock,
                rng=self.rng,
                deadline_s=self.deadline_s,
            )
            self._record_choice()
            self._record_recovery(self._scheduler)
            return outputs
        if hasattr(strategy, "run_shards"):
            kwargs = {} if self.deadline_s is None else {"deadline_s": self.deadline_s}
            outputs = strategy.run_shards(self.engine.network, x, plan, **kwargs)
            self._record_recovery(strategy)
            return outputs
        return self._serial.run_shards(
            self.engine.network,
            x,
            plan,
            strategy=strategy,
            exec_lock=self.engine._exec_lock,
            rng=self.rng,
        )

    def _record_recovery(self, source) -> None:
        """Harvest the executing scheduler's recovery telemetry for the
        wave that just ran: the latest log lands in
        :attr:`DaemonStats.recovery` (and on each of the wave's
        :class:`~repro.api.results.InferenceResult`\\ s), retried
        attempts and recovered waves bump their counters."""
        log = getattr(source, "last_recovery", None)
        if log is None:
            return
        self._wave_recovery = log.as_dict()
        with self._stats_lock:
            self._stats.recovery = self._wave_recovery
            self._stats.retries += sum(
                1 for entry in log.retries if entry.get("action") != "serial-fallback"
            )
            if log.recovered:
                self._stats.recoveries += 1

    def _record_choice(self) -> None:
        """Copy the scheduler's latest decision telemetry (adaptive
        schedulers only) into the daemon stats."""
        choice = getattr(self._scheduler, "last_choice", None)
        if choice is None:
            return
        with self._stats_lock:
            self._stats.decisions = [d.as_dict() for d in choice.stages]
            self._stats.mode_waves[choice.mode] = (
                self._stats.mode_waves.get(choice.mode, 0) + 1
            )

    def _slice_results(self, ready: List[_Request], outputs, wall: float) -> None:
        """Regroup per-shard outputs into per-request results."""
        cursor = 0
        for item in ready:
            n_shards = len(item.plan)
            shard_outputs = outputs[cursor : cursor + n_shards]
            cursor += n_shards
            parts = [logits for logits, _ in shard_outputs]
            telemetry = merge_telemetry(records for _, records in shard_outputs)
            logits = (
                np.concatenate(parts, axis=0) if len(parts) > 1 else parts[0]
            )
            self._finish(item, logits, telemetry, n_shards, wall)

    def _finish(self, item: _Request, logits, telemetry, n_shards, wall) -> None:
        result = InferenceResult(
            logits=logits,
            backend=self.backend,
            batch_size=item.rows,
            micro_batches=n_shards,
            wall_time_s=wall,
            layers=telemetry,
            labels=item.labels,
            recovery=self._wave_recovery,
        )
        with self._stats_lock:
            self._stats.completed += 1
            self._stats.total_images += item.rows
            self._inflight -= 1
        if not item.future.done():
            item.future.set_result(result)

    def _fail(self, item: _Request, exc: BaseException) -> None:
        with self._stats_lock:
            self._stats.failed += 1
            self._inflight -= 1
        if not item.future.done():
            item.future.set_exception(exc)

    # ------------------------------------------------------------------
    @property
    def queue_depth(self) -> int:
        """Live gauge: requests in the admission queue right now."""
        return self._queue.qsize()

    @property
    def in_flight(self) -> int:
        """Live gauge: requests accepted but not yet resolved (queued,
        assembling, or executing)."""
        with self._stats_lock:
            return self._inflight

    @property
    def healthy(self) -> bool:
        """True while the daemon can accept and serve requests: open,
        not aborted, both pipeline stages alive. Routers poll this to
        evict dead replicas and re-admit recovered ones."""
        return (
            not self._closed
            and not self._closing
            and not self._abort
            and self._assembler.is_alive()
            and self._executor.is_alive()
        )

    def drain(self, timeout: Optional[float] = None) -> bool:
        """Wait until every accepted request has resolved (``in_flight``
        reaches 0) without closing the daemon — the router's
        quiesce-before-handoff hook. Returns False if ``timeout``
        seconds pass first."""
        deadline = None if timeout is None else time.monotonic() + timeout
        while self.in_flight > 0:
            if deadline is not None and time.monotonic() >= deadline:
                return False
            time.sleep(0.002)
        return True

    @property
    def stats(self) -> DaemonStats:
        """A snapshot of the daemon's counters (plus the live
        ``queue_depth`` / ``in_flight`` gauges at snapshot time)."""
        with self._stats_lock:
            snapshot = DaemonStats(**self._stats.as_dict())
            snapshot.in_flight = self._inflight
        snapshot.queue_depth = self._queue.qsize()
        return snapshot

    def close(self, *, drain: bool = True, timeout: Optional[float] = None) -> None:
        """Stop the daemon. ``drain=True`` (default) finishes every
        queued request first; ``drain=False`` fails still-queued
        requests with ``RuntimeError`` (in-flight waves always finish).
        Idempotent."""
        if self._closed:
            return
        self._drain = drain
        self._closing = True
        self._assembler.join(timeout=timeout)
        self._executor.join(timeout=timeout)
        if (
            self._assembler.is_alive() or self._executor.is_alive()
        ):  # pragma: no cover - pathological
            raise RuntimeError("ServingDaemon consumers did not stop in time")
        self._closed = True
        if self._owns_strategy and hasattr(self._strategy, "close"):
            self._strategy.close()
        if self._owns_scheduler and hasattr(self._scheduler, "close"):
            self._scheduler.close()

    def __enter__(self) -> "ServingDaemon":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ServingDaemon(backend={self.backend!r}, "
            f"window={self.coalesce_window_s * 1e3:.1f}ms, "
            f"queue<= {self._queue.maxsize}, engine={self.engine!r})"
        )
