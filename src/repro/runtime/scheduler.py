"""Pluggable, string-keyed execution schedulers for compiled plans.

A scheduler decides *where and in what order* the shards (and tiles) of
an :class:`~repro.runtime.plan.ExecutionPlan` run; the layer-level
execution *strategy* (:mod:`repro.api.backends`) still decides *how*
each crossbar stage is sampled. Four first-class schedulers:

``"serial"``
    In-process, shard by shard, under the engine's execution lock —
    exactly the session loop the Engine has always run.
``"shard-parallel"``
    Shards fan out over a worker process pool (the pool machinery that
    used to live in :mod:`repro.api.parallel`). Activations ship
    through the shared-memory :class:`~repro.runtime.transport.ActivationRing`
    by default; per-shard reseeding keeps N-worker output bit-identical
    to serial for the same plan.
``"tile-parallel"``
    Shards stay in-process but every crossbar stage's *column tiles*
    run concurrently on a thread pool — the axis that still has
    headroom after the shard axis saturates at ``batch / micro_batch``.
    Tiles draw from their own per-tile generators, so the results are
    bit-identical to the serial ``"stochastic-packed"`` path.
``"adaptive"``
    Inspects the compiled :class:`~repro.runtime.plan.ExecutionPlan`
    before execution and *chooses* one of the other three per request,
    driven by the calibratable cost model of
    :mod:`repro.runtime.costmodel` (plans below the break-even window
    count always run serial). The recommended default for
    pool-capable backends; ``REPRO_FORCE_SCHEDULER`` overrides the
    choice, per-stage decisions surface in
    :attr:`repro.api.results.InferenceResult.decisions`.

All of them return **per-shard** ``(logits, telemetry)`` pairs in plan
order, which is what lets the serving daemon slice a coalesced wave
back into per-request results.

``REPRO_MAX_POOL_WORKERS`` (environment) caps worker counts of the
pool-backed schedulers — the ``make check-runtime`` tier sets it to 2
so pool tests cannot oversubscribe CI hosts.
"""

from __future__ import annotations

import multiprocessing
import os
import sys
import threading
import time
from dataclasses import replace
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor, wait
from concurrent.futures import TimeoutError as FuturesTimeout
from concurrent.futures.process import BrokenProcessPool
from typing import Dict, List, Optional, Tuple, Type

import numpy as np

from repro.api.backends import get_backend
from repro.api.results import LayerTelemetry, merge_telemetry
from repro.runtime import faults, transport
from repro.runtime.env import env_int, env_str
from repro.runtime.costmodel import (
    ADAPTIVE_MODES,
    AdaptiveChoice,
    CostModel,
    candidate_modes,
    load_cost_model,
)
from repro.runtime.plan import (
    ExecutionPlan,
    ShardPlan,
    compile_plan,
    group_vectorizable,
    run_stages,
    run_stages_group,
    seed_shard,
)
from repro.runtime.recovery import (
    DeadlineExceeded,
    RecoveryLog,
    RetryPolicy,
    run_with_recovery,
)
from repro.utils.rng import new_rng

#: (logits, per-stage telemetry) for one shard — every scheduler's unit
#: of output.
ShardResult = Tuple[np.ndarray, List[LayerTelemetry]]

_SCHEDULERS: Dict[str, Type] = {}


def register_scheduler(name: str, *, summary: str = ""):
    """Class decorator registering a scheduler under ``name``.

    The class must provide
    ``run_shards(network, x, plan, *, strategy, exec_lock, rng,
    deadline_s)`` returning per-shard :data:`ShardResult` pairs in plan
    order (``deadline_s`` may be ignored by schedulers that cannot
    abandon stragglers — the serial loop is itself the rescue path).
    """

    def decorator(cls):
        if name in _SCHEDULERS:
            raise ValueError(f"scheduler {name!r} is already registered")
        cls.name = name
        if summary:
            cls.summary = summary
        _SCHEDULERS[name] = cls
        return cls

    return decorator


def available_schedulers() -> List[str]:
    """Registered scheduler names, sorted."""
    return sorted(_SCHEDULERS)


def resolve_scheduler(source) -> Tuple[object, bool]:
    """Resolve ``source`` (name or instance) to ``(scheduler, owned)``.

    ``owned`` is True when this call constructed a resource-carrying
    scheduler from a name — the caller must then close it. Instances
    pass through unowned; the stateless serial scheduler is shared.
    """
    if hasattr(source, "run_shards"):
        return source, False
    cls = _SCHEDULERS.get(source)
    if cls is None:
        raise KeyError(
            f"unknown scheduler {source!r}; registered: "
            f"{', '.join(available_schedulers())}"
        )
    if getattr(cls, "stateless", False):
        instance = getattr(cls, "_shared", None)
        if instance is None:
            instance = cls._shared = cls()
        return instance, False
    return cls(), True


def _worker_cap(workers: int) -> int:
    """Apply the ``REPRO_MAX_POOL_WORKERS`` environment cap.

    A malformed or non-positive cap fails loudly here, at scheduler
    construction, instead of surfacing as an opaque crash deep inside
    the process pool (a mis-set CI variable should stop the build with
    a message that names itself).
    """
    value = env_int("REPRO_MAX_POOL_WORKERS", minimum=1)
    if value is None:
        return workers
    return max(1, min(workers, value))


def _shard_plan_of(plan) -> ShardPlan:
    """Accept either an :class:`ExecutionPlan` or a bare
    :class:`ShardPlan` (legacy ``run_plan`` callers)."""
    return getattr(plan, "shard_plan", plan)


def _pool_context():
    """The multiprocessing context worker pools are built from.

    ``fork`` whenever the creating process is still single-threaded:
    the worker then *shares* the parent's physical pages (network
    weights, cached sampler tables, warmed bytecode) copy-on-write
    instead of carrying its own unpickled copies. On small-cache
    machines that halves the combined working set — measured here as a
    ~2x per-wave speedup of the group executor over a forkserver
    worker running the identical code, which is the difference between
    pooled dispatch beating serial and losing to it.

    ``forkserver`` once any other thread exists: serving front-ends
    create pools lazily from worker *threads*, and a plain ``fork``
    there occasionally snapshots another thread's held lock into the
    child, deadlocking the pool initializer (the flaky check-runtime
    hang). The fork server is a fresh single-threaded process (started
    via fork+exec), so its forks are always clean. Like any spawn-based
    start method it re-imports ``__main__`` in the child, so falls back
    to the platform default both where forkserver is unavailable and
    when the parent's ``__main__`` is not importable from a real file
    (``python - <<...`` / piped-stdin scripts, whose recorded path is
    the literal ``<stdin>``).
    """
    if threading.active_count() == 1 and "fork" in multiprocessing.get_all_start_methods():
        return multiprocessing.get_context("fork")
    main = sys.modules.get("__main__")
    main_file = getattr(main, "__file__", None)
    if main_file is not None and not os.path.exists(main_file):
        return multiprocessing.get_context()
    try:
        context = multiprocessing.get_context("forkserver")
    except ValueError:  # pragma: no cover - platform without forkserver
        return multiprocessing.get_context()
    # Preload this module (and with it numpy + the repro package) into
    # the fork server once, so every worker forks with warm imports
    # instead of re-importing the scientific stack per process.
    context.set_forkserver_preload(["repro.runtime.scheduler"])
    return context


# ----------------------------------------------------------------------
# Serial: the in-process session loop.
# ----------------------------------------------------------------------
@register_scheduler("serial", summary="in-process, shard by shard")
class SerialScheduler:
    """Execute shards one after another in the calling process.

    Each shard's (reseed, execute) pair runs under ``exec_lock`` (the
    engine's execution lock): the shared layers hold that shard's
    sampler state for exactly the critical section, so concurrent
    sessions interleave at shard granularity without clobbering each
    other. Seedless shards (unseeded sessions) continue the network's
    current streams via ``rng``, exactly like the legacy executor.
    """

    stateless = True

    def run_shards(
        self,
        network,
        x: np.ndarray,
        plan,
        *,
        strategy,
        exec_lock=None,
        rng: Optional[np.random.Generator] = None,
        deadline_s: Optional[float] = None,
    ) -> List[ShardResult]:
        # ``deadline_s`` is accepted for protocol parity and ignored:
        # the serial loop has no stragglers to abandon — it *is* the
        # rescue path every deadline recovery falls back to.
        lock = exec_lock if exec_lock is not None else threading.RLock()
        outputs: List[ShardResult] = []
        for shard in _shard_plan_of(plan).shards:
            # float64 conversion happens per shard so micro-batching
            # bounds peak memory on large requests.
            chunk = np.asarray(x[shard.start : shard.stop], dtype=np.float64)
            with lock:
                shard_rng = (
                    rng if shard.seed is None else seed_shard(network, shard.seed)
                )
                if shard_rng is None:  # pragma: no cover - defensive
                    raise ValueError(
                        "seedless shard requires an explicit rng; refusing "
                        "to draw fresh entropy inside a plan execution path"
                    )
                telemetry: List[LayerTelemetry] = []
                logits = run_stages(network, chunk, strategy, shard_rng, telemetry)
            outputs.append((logits, telemetry))
        return outputs

    def close(self) -> None:  # pragma: no cover - nothing to release
        pass

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "<scheduler serial>"


# ----------------------------------------------------------------------
# Shard-parallel: the process pool (moved from repro.api.parallel).
# ----------------------------------------------------------------------
#: Per-worker-process state, populated by the pool initializer: each
#: worker holds its own copy of the compiled network plus the inner
#: layer-level strategy it executes shards with.
_WORKER_STATE: dict = {}


def _worker_init(
    network,
    inner_backend: str,
    fault_plan: Optional[dict] = None,
    lane_conns: Optional[list] = None,
    lane_parent_fds: Optional[list] = None,
) -> None:
    """Pool initializer: receive the network once, resolve the inner
    strategy. Runs in the worker process. The inner resolution bypasses
    any dispatch override a forked worker inherited from the parent —
    a worker must execute layers in-process, never recurse into
    another pool. ``fault_plan`` (a serialized
    :class:`~repro.runtime.faults.FaultPlan`) arms the chaos harness in
    this worker; only the scheduler's *first* pool generation ships one,
    so rebuilt pools come up healthy.

    ``lane_conns`` are the worker ends of the express-lane pipes (fork
    context only — they ride the fork snapshot, never a pickle); this
    worker parks on one of them when :func:`_worker_lane` runs.
    ``lane_parent_fds`` are the fork-inherited duplicates of the
    *scheduler's* ends, closed here so a worker can never hold a lane's
    parent side open — EOF detection in both directions depends on
    exactly one owner per end."""
    _WORKER_STATE["network"] = network
    _WORKER_STATE["strategy"] = get_backend(inner_backend, allow_override=False)
    _WORKER_STATE["lane_conns"] = lane_conns
    for fd in lane_parent_fds or []:
        try:
            os.close(fd)
        except OSError:  # pragma: no cover - already closed
            pass
    if fault_plan is not None:
        faults.install_fault_plan(faults.FaultPlan.from_dict(fault_plan))
    else:
        # A fork(server) snapshot can carry the parent's installed plan
        # in module globals; only explicitly shipped plans may arm here
        # (rebuilt pools must come up healthy for recovery to converge).
        faults.clear_inherited_plan()


def _run_shard_local(
    chunk: np.ndarray, seed: Optional[int], index: int = 0
) -> ShardResult:
    network = _WORKER_STATE["network"]
    strategy = _WORKER_STATE["strategy"]
    faults.fault_point("worker.shard", shard=index, rows=int(np.shape(chunk)[0]))
    rng = seed_shard(network, seed)
    telemetry: List[LayerTelemetry] = []
    logits = run_stages(
        network, np.asarray(chunk, dtype=np.float64), strategy, rng, telemetry
    )
    return logits, telemetry


def _worker_run_shard(
    chunk: np.ndarray, seed: Optional[int], index: int = 0
) -> ShardResult:
    """Pickled-transport shard task: the activation slice rode the
    pool's IPC pipe."""
    return _run_shard_local(chunk, seed, index)


def _worker_run_shard_shm(
    ticket: transport.ShmTicket, seed: Optional[int], index: int = 0
) -> ShardResult:
    """Shared-memory shard task: only the ticket crossed the pipe; the
    activations are read straight out of the ring slot."""
    return _run_shard_local(transport.load(ticket), seed, index)


def _worker_warmup() -> int:
    """Warm one worker end to end (runs in the worker process).

    Builds the fused samplers' cached inverse-CDF tables for the
    shipped network — the dominant first-shard cost after process
    spawn — so a prewarmed pool's first real wave pays compute only.
    Returns the worker's pid (which also proves the process exists:
    ``ProcessPoolExecutor`` spawns lazily on first submit).
    """
    network = _WORKER_STATE["network"]
    for layer in network.tiled_layers:
        sampler = getattr(layer, "_fused_sampler", None)
        if sampler is not None:
            bits = layer.config.window_bits
            if sampler.supports_batched_draws(bits):
                sampler._count_quant_table(bits)
        # One micro-batch-sized pass per layer: initializes the worker's
        # BLAS state, faults the weight pages in (a forked worker pays a
        # copy-on-write storm on first touch otherwise), and sizes the
        # sampler's scratch allocations. Real shards reseed via
        # seed_shard, so advancing this copy's sampler streams (and its
        # pass counters) is invisible to every actual request.
        layer.forward(np.ones((64, layer.in_features)))
    return os.getpid()


def _run_group_local(slab: np.ndarray, specs) -> List[ShardResult]:
    """Execute one contiguous shard *group* in this worker.

    ``specs`` is a tuple of ``(seed, start, stop, index)`` rows relative
    to ``slab``. When the inner strategy's draw chain can be reproduced
    externally (:func:`~repro.runtime.plan.group_vectorizable`), the
    whole group runs stage-major through
    :func:`~repro.runtime.plan.run_stages_group` — one numpy pass per
    stage over all the group's rows, per-shard uniforms drawn in shard
    order — which is bit-identical to the per-shard loop it replaces.
    Otherwise (bit-level backends, seedless shards) the group falls
    back to that loop.
    """
    network = _WORKER_STATE["network"]
    strategy = _WORKER_STATE["strategy"]
    slab = np.asarray(slab, dtype=np.float64)
    if len(specs) > 1 and all(s[0] is not None for s in specs) and group_vectorizable(
        network, strategy
    ):
        for seed, start, stop, index in specs:
            faults.fault_point("worker.shard", shard=index, rows=int(stop - start))
        return run_stages_group(
            network,
            slab,
            [(seed, start, stop) for seed, start, stop, _index in specs],
            strategy,
        )
    return [
        _run_shard_local(slab[start:stop], seed, index)
        for seed, start, stop, index in specs
    ]


def _split_groups(shards, k: int) -> List[List[Tuple[int, object]]]:
    """Split the shard sequence into at most ``k`` contiguous, balanced
    groups of ``(positional_index, shard)`` pairs.

    Contiguity matters twice: one shm ticket (or one pickled slab) can
    cover a whole group's rows, and the stage-major group executor
    needs shard rows to be consecutive blocks of its slab.
    """
    indexed = list(enumerate(shards))
    n = len(indexed)
    k = max(1, min(int(k), n))
    base, extra = divmod(n, k)
    groups: List[List[Tuple[int, object]]] = []
    pos = 0
    for i in range(k):
        size = base + (1 if i < extra else 0)
        groups.append(indexed[pos : pos + size])
        pos += size
    return groups


def _worker_run_group(slab: np.ndarray, specs) -> List[ShardResult]:
    """Pickled-transport group task: the group's row slab rode the
    pool's IPC pipe."""
    return _run_group_local(slab, specs)


def _worker_run_group_shm(ticket: transport.ShmTicket, specs) -> List[ShardResult]:
    """Shared-memory group task: one ticket covers the whole group's
    contiguous rows."""
    return _run_group_local(transport.load(ticket), specs)


def _worker_lane(index: int) -> int:
    """Park this worker on express lane ``index`` (runs in the worker).

    The lane occupies the worker for the life of the pool: waves arrive
    as ``(wave_id, (kind, payload), specs)`` straight off the
    scheduler's pipe and every reply echoes the ``wave_id``, so the
    scheduler can discard a straggler's late reply from an abandoned
    wave instead of mistaking it for the current one. Task failures are
    shipped back as ``(wave_id, False, exc)`` — the lane survives them,
    exactly like a pool future carrying an exception. EOF on the pipe
    (the scheduler closed or rebuilt the pool) releases the worker back
    into the executor loop so ``shutdown`` can join it.
    """
    conns = _WORKER_STATE.get("lane_conns") or []
    conn = conns[index]
    # Sibling lane ends rode the same fork snapshot; close them so each
    # lane's worker end lives in exactly one process — a worker death
    # must EOF its own lane, not keep a sibling's half-open.
    for other_index, other in enumerate(conns):
        if other_index != index:
            other.close()
    _WORKER_STATE["lane_conns"] = [
        conn if i == index else None for i in range(len(conns))
    ]
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            return index
        if message is None:
            return index
        wave_id, (kind, payload), specs = message
        try:
            if kind == "shm":
                body = _worker_run_group_shm(payload, specs)
            else:
                body = _worker_run_group(payload, specs)
            reply = (wave_id, True, body)
        except BaseException as exc:  # taxonomy: shipped to the scheduler, classified there by run_with_recovery
            reply = (wave_id, False, exc)
        try:
            conn.send(reply)
        except (BrokenPipeError, OSError):
            return index
        except Exception as exc:  # taxonomy: unpicklable reply body, summarized and re-shipped
            # The body would not pickle (an exotic exception payload);
            # ship a summary rather than severing the lane.
            try:
                conn.send((wave_id, False, RuntimeError(repr(exc))))
            except Exception:  # taxonomy: reply channel unusable, lane retires (parent sees EOF)
                return index


@register_scheduler(
    "shard-parallel",
    summary="process-pool shards over shared-memory transport",
)
class ShardParallelScheduler:
    """Fan a plan's shards over a worker process pool.

    The compiled network ships once per worker via the pool
    initializer; each shard task re-derives the full sampler state from
    its child seed and executes through the same
    :func:`~repro.runtime.plan.run_stages` the serial scheduler uses,
    so which worker runs which shard is irrelevant — N-worker output is
    bit-identical to serial for the same plan.

    Parameters
    ----------
    workers:
        Pool size; defaults to the host's CPU count (capped by the
        ``REPRO_MAX_POOL_WORKERS`` environment variable).
    inner:
        Layer-level backend each worker executes shards with.
    transport:
        ``"shm"`` (default) ships activations through the
        shared-memory ring; ``"pickle"`` uses the classic pickled
        slices. Falls back to pickle automatically if shared memory is
        unavailable at runtime.
    ring_slots:
        How many waves the activation ring keeps in flight.
    recovery:
        The :class:`~repro.runtime.recovery.RetryPolicy` governing how
        worker-pool failures are handled (``None`` reads the
        ``REPRO_MAX_RETRIES`` / ``REPRO_REQUEST_DEADLINE_S`` family
        from the environment). A ``BrokenProcessPool`` rebuilds the
        pool and retries with backoff; a shared-memory outage flips to
        pickle transport and retries; a blown deadline abandons the
        stragglers and re-executes serially in-process — bit-identical,
        because every shard re-derives its sampler state from its own
        plan seed. :attr:`last_recovery` reports what the calling
        thread's most recent wave went through.
    """

    stateless = False
    requires_seeds = True

    def __init__(
        self,
        workers: Optional[int] = None,
        inner: str = "stochastic",
        transport: str = "shm",
        ring_slots: int = 4,
        recovery: Optional[RetryPolicy] = None,
    ) -> None:
        if workers is not None and workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if transport not in ("shm", "pickle"):
            raise ValueError(f"transport must be 'shm' or 'pickle', got {transport!r}")
        self.workers = _worker_cap(int(workers or os.cpu_count() or 1))
        self.inner = inner
        get_backend(inner, allow_override=False)  # fail fast on unknown names
        self.transport = transport
        self.recovery = recovery if recovery is not None else RetryPolicy.from_env()
        self._ring_slots = int(ring_slots)
        self._ring: Optional[transport.ActivationRing] = None
        self._pool: Optional[ProcessPoolExecutor] = None
        self._pool_network = None
        self._pool_generation = 0
        self._serial = SerialScheduler()
        self._lock = threading.Lock()
        # Express lanes (see :meth:`warm`): one duplex pipe per worker,
        # created with a fork-context pool and activated when ``warm``
        # parks every worker on its lane. ``_lane_pending`` holds the
        # scheduler ends between pool construction and activation;
        # ``_lane_lock`` serializes waves over the parked workers.
        self._lanes: Optional[list] = None
        self._lane_pending: Optional[list] = None
        self._lane_wave = 0
        self._lane_lock = threading.Lock()
        # Per-thread recovery telemetry, mirroring the adaptive
        # scheduler's decision telemetry: serving threads sharing one
        # scheduler each see their own wave's log.
        self._recovery_local = threading.local()

    @property
    def last_recovery(self) -> Optional[RecoveryLog]:
        """The calling thread's most recent wave's
        :class:`~repro.runtime.recovery.RecoveryLog` (None before this
        thread has executed a plan)."""
        return getattr(self._recovery_local, "log", None)

    # ------------------------------------------------------------------
    def run_shards(
        self,
        network,
        x: np.ndarray,
        plan,
        *,
        strategy=None,
        exec_lock=None,
        rng=None,
        deadline_s: Optional[float] = None,
    ) -> List[ShardResult]:
        """Execute every shard on the pool under the recovery policy;
        per-shard results in plan order. ``strategy`` is accepted for
        interface parity but unused — workers resolve their own inner
        strategy and own their own network copies. ``exec_lock``/``rng``
        are only touched by the serial rescue path. ``deadline_s``
        (default: the policy's) bounds the wall time of the pool
        attempts; a blown deadline abandons the stragglers and
        re-executes serially."""
        shard_plan = _shard_plan_of(plan)
        self._recovery_local.log = None
        if shard_plan.batch_size == 0:
            # N=0 draws nothing, so skip the reseed too: the shared
            # layers are left untouched (no lock needed) and the
            # (0, n_classes) output is identical to serial.
            telemetry: List[LayerTelemetry] = []
            logits = run_stages(
                network,
                np.asarray(x[0:0], dtype=np.float64),
                get_backend(self.inner, allow_override=False),
                new_rng(0),  # zero rows draw nothing; any fixed seed works
                telemetry,
            )
            return [(logits, telemetry)]
        faults.fault_point(
            "scheduler.wave",
            shards=len(shard_plan.shards),
            rows=shard_plan.batch_size,
        )
        fallback = None
        if self.recovery.serial_fallback:
            fallback = lambda: self._serial_rescue(  # noqa: E731
                network, x, shard_plan, exec_lock, rng
            )
        outputs, log = run_with_recovery(
            lambda remaining: self._run_pool_once(network, x, shard_plan, remaining),
            policy=self.recovery,
            deadline_s=deadline_s,
            fallback=fallback,
            on_retry=self._repair,
        )
        self._recovery_local.log = log
        return outputs

    def _run_pool_once(
        self,
        network,
        x: np.ndarray,
        shard_plan: ShardPlan,
        remaining: Optional[float],
    ) -> List[ShardResult]:
        """One pool attempt: publish, fan out *groups*, gather under
        the remaining deadline budget.

        Shards are batched into at most ``workers`` contiguous groups —
        one pool submission (and one shm ticket) per group instead of
        one per shard, so the per-task dispatch constant is paid
        ``min(workers, shards)`` times per wave. Inside a worker the
        group executes stage-major and vectorized when the inner
        backend allows it (see :func:`_run_group_local`), bit-identical
        to per-shard execution either way.
        """
        pool = self._ensure_pool(network)
        lease = None
        if self.transport == "shm":
            try:
                lease = self._ensure_ring().publish(np.ascontiguousarray(x))
            except transport.TransportUnavailable:
                # Host cannot do shared memory — flip to pickle for the
                # lifetime of this scheduler and carry on.
                self.transport = "pickle"
        deadline = None if remaining is None else time.monotonic() + remaining
        futures = []
        abandoned = False
        try:
            groups = _split_groups(shard_plan.shards, self.workers)
            lanes = self._lanes
            if lanes is not None and len(groups) <= len(lanes):
                try:
                    return self._run_lanes(lanes, lease, x, groups, deadline)
                except BaseException:  # taxonomy: re-raised for run_with_recovery after marking the lease
                    # A lane may still be reading the slab (a straggler,
                    # a dead worker's half-read) — never recycle the
                    # slot under it.
                    abandoned = True
                    raise
            for group in groups:
                base = group[0][1].start
                specs = tuple(
                    (shard.seed, shard.start - base, shard.stop - base, index)
                    for index, shard in group
                )
                if lease is not None:
                    futures.append(
                        pool.submit(
                            _worker_run_group_shm,
                            lease.ticket(base, group[-1][1].stop),
                            specs,
                        )
                    )
                else:
                    futures.append(
                        pool.submit(
                            _worker_run_group,
                            x[base : group[-1][1].stop],
                            specs,
                        )
                    )
            outputs: List[ShardResult] = []
            for future in futures:
                budget = None if deadline is None else deadline - time.monotonic()
                if budget is not None and budget <= 0:
                    raise DeadlineExceeded(
                        "wave deadline exhausted while gathering shards"
                    )
                try:
                    outputs.extend(future.result(timeout=budget))
                except (FuturesTimeout, TimeoutError):
                    raise DeadlineExceeded(
                        "wave deadline exhausted while gathering shards"
                    ) from None
            return outputs
        except DeadlineExceeded:
            # Straggler path: cancel what has not started and walk away
            # — never wait out a wedged worker.
            abandoned = True
            for future in futures:
                future.cancel()
            raise
        finally:
            if lease is not None:
                if abandoned:
                    # A straggler may still be reading the slot; destroy
                    # the segment instead of recycling it so a retry can
                    # never rewrite memory under a live reader.
                    lease.abandon()
                else:
                    # An early future's exception must not release the
                    # slot while later shards are still reading it — the
                    # ring's never-rewrite-while-read invariant. Wait
                    # out every in-flight task first (a no-op on the
                    # happy path).
                    wait(futures)
                    lease.release()

    def _run_lanes(
        self,
        lanes: list,
        lease,
        x: np.ndarray,
        groups,
        deadline: Optional[float],
    ) -> List[ShardResult]:
        """One wave over the express lanes: direct pipe send/recv to the
        parked workers (see :meth:`warm`), no executor machinery on the
        per-wave path.

        The executor's submit/gather crosses its management thread and
        call-queue feeder on the way in and the result queue plus the
        management thread on the way out — ~6 scheduler hops per wave,
        each paying run-queue latency on a contended host. A lane is one
        write and one read on a dedicated pipe: the worker wakes
        directly, computes, and wakes the caller directly. Replies are
        wave-tagged, so a straggler's reply from a deadline-abandoned
        wave is discarded on the next wave instead of corrupting it. A
        severed lane (dead worker) surfaces as ``BrokenProcessPool``,
        which the recovery policy repairs exactly like an executor
        crash: rebuild the pool and retry (the rebuilt pool runs
        executor-dispatch until the next ``warm``).
        """
        with self._lane_lock:
            self._lane_wave += 1
            wave_id = self._lane_wave
            live = []
            try:
                for slot, group in enumerate(groups):
                    base = group[0][1].start
                    specs = tuple(
                        (shard.seed, shard.start - base, shard.stop - base, index)
                        for index, shard in group
                    )
                    if lease is not None:
                        payload = ("shm", lease.ticket(base, group[-1][1].stop))
                    else:
                        payload = ("pickle", x[base : group[-1][1].stop])
                    lanes[slot].send((wave_id, payload, specs))
                    live.append(slot)
            except (BrokenPipeError, OSError) as exc:
                raise BrokenProcessPool(
                    f"express lane severed mid-send: {exc}"
                ) from exc
            outputs: List[ShardResult] = []
            for slot in live:
                while True:
                    budget = (
                        None if deadline is None else deadline - time.monotonic()
                    )
                    if budget is not None and budget <= 0:
                        raise DeadlineExceeded(
                            "wave deadline exhausted while gathering shards"
                        )
                    try:
                        if not lanes[slot].poll(budget):
                            raise DeadlineExceeded(
                                "wave deadline exhausted while gathering shards"
                            )
                        got_wave, ok, body = lanes[slot].recv()
                    except (EOFError, OSError) as exc:
                        raise BrokenProcessPool(
                            f"express lane severed mid-wave: {exc}"
                        ) from exc
                    if got_wave != wave_id:
                        continue  # stale reply from an abandoned wave
                    if not ok:
                        raise body
                    outputs.extend(body)
                    break
            return outputs

    def _repair(self, exc: BaseException) -> Optional[str]:
        """Fix the broken resource before a retry; returns the action
        label recorded in the :class:`RecoveryLog`."""
        if isinstance(exc, BrokenProcessPool):
            self._rebuild_pool()
            return "rebuild-pool"
        if isinstance(exc, transport.TransportUnavailable):
            self.transport = "pickle"
            return "pickle-transport"
        return None

    def _close_lanes(self) -> None:
        """Tear down the express lanes (idempotent). Closing the
        scheduler ends EOFs every parked worker back into the executor
        loop, which is what lets ``shutdown(wait=True)`` join a pool
        whose workers were parked on lanes."""
        with self._lane_lock:
            for conn in (self._lanes or []) + (self._lane_pending or []):
                try:
                    conn.close()
                except OSError:  # pragma: no cover - already closed
                    pass
            self._lanes = None
            self._lane_pending = None

    def _rebuild_pool(self) -> None:
        """Tear down a broken pool so the next attempt builds a fresh
        one (generation > 0, so no fault plan ships to its workers)."""
        with self._lock:
            self._close_lanes()
            if self._pool is not None:
                # The pool is broken — its workers are gone; waiting on
                # it can only block.
                self._pool.shutdown(wait=False)
                self._pool = None
                self._pool_network = None

    def _serial_rescue(
        self, network, x: np.ndarray, shard_plan: ShardPlan, exec_lock, rng
    ) -> List[ShardResult]:
        """In-process re-execution of the whole wave — always completes
        and is bit-identical to a pool run of the same plan, because
        every shard re-derives its sampler state from its own seed."""
        return self._serial.run_shards(
            network,
            x,
            shard_plan,
            strategy=get_backend(self.inner, allow_override=False),
            exec_lock=exec_lock,
            rng=rng,
        )

    def run_plan(
        self,
        network,
        x: np.ndarray,
        plan,
        *,
        exec_lock=None,
        rng=None,
        deadline_s: Optional[float] = None,
    ):
        """Merged ``(logits, telemetry)`` over the whole plan — the
        shard-level backend protocol (:meth:`repro.api.Session.run`)."""
        outputs = self.run_shards(
            network, x, plan, exec_lock=exec_lock, rng=rng, deadline_s=deadline_s
        )
        parts = [logits for logits, _ in outputs]
        telemetry = merge_telemetry(records for _, records in outputs)
        logits = np.concatenate(parts, axis=0) if len(parts) > 1 else parts[0]
        return logits, telemetry

    def _ensure_pool(self, network) -> ProcessPoolExecutor:
        """The live pool for ``network``, (re)created under a lock so a
        serving front-end's threads can share one scheduler instance.

        Only the *first* generation ships the active fault plan to its
        workers: a rebuilt pool models "the crashed worker's replacement
        is healthy", which is what lets retry-based recovery converge
        instead of re-injecting the same crash forever.
        """
        with self._lock:
            if self._pool is not None and self._pool_network is not network:
                self._close_lanes()
                self._pool.shutdown(wait=True)
                self._pool = None
            if self._pool is None:
                plan = faults.active_fault_plan()
                shipped = (
                    plan.as_dict()
                    if plan is not None and self._pool_generation == 0
                    else None
                )
                context = _pool_context()
                # Express-lane pipes must exist before the workers fork
                # so the worker ends ride the fork snapshot (Connection
                # objects never cross a pickle). Spawn-based contexts
                # cannot inherit them — those pools simply have no
                # lanes and keep executor dispatch.
                lane_pairs = []
                if context.get_start_method() == "fork":
                    lane_pairs = [
                        context.Pipe(duplex=True) for _ in range(self.workers)
                    ]
                self._pool = ProcessPoolExecutor(
                    max_workers=self.workers,
                    mp_context=context,
                    initializer=_worker_init,
                    initargs=(
                        network,
                        self.inner,
                        shipped,
                        [child for _parent, child in lane_pairs] or None,
                        [parent.fileno() for parent, _child in lane_pairs]
                        or None,
                    ),
                )
                self._prespawn_workers(self._pool)
                # The workers hold their fork-inherited copies now;
                # drop ours so a worker death EOFs its lane.
                for _parent, child in lane_pairs:
                    child.close()
                with self._lane_lock:
                    self._lane_pending = [
                        parent for parent, _child in lane_pairs
                    ] or None
                self._pool_network = network
                self._pool_generation += 1
            return self._pool

    def _prespawn_workers(self, pool: ProcessPoolExecutor) -> None:
        """Start every worker before any task is submitted.

        The executor spawns workers lazily, one per submit — so a worker
        crash mid-wave can race a sibling's in-flight spawn, and the
        executor's broken-pool teardown then terminates only the workers
        registered at that instant but *joins* the late-registered one
        too, which (never signalled, blocked on the torn-down call
        queue) hangs the join forever. With the full complement spawned
        up front there is never a spawn in flight for a crash to race.
        No tasks exist yet, so poking the executor's spawn machinery
        here is single-threaded; if the stdlib internals ever move, the
        lazy path is only a hang-risk under injected crashes.
        """
        try:  # pragma: no branch
            with pool._shutdown_lock:
                while len(pool._processes) < self.workers:
                    pool._spawn_process()
        except AttributeError:  # pragma: no cover - stdlib internals moved
            pass

    def _ensure_ring(self) -> transport.ActivationRing:
        with self._lock:
            if self._ring is None:
                self._ring = transport.ActivationRing(slots=self._ring_slots)
            return self._ring

    # ------------------------------------------------------------------
    @property
    def pool_generation(self) -> int:
        """How many pools this scheduler has built (0 = none yet).

        A stable generation across waves is the observable proof that
        the warm pool was *reused* rather than rebuilt — the daemon
        warm-pool tests assert on it.
        """
        return self._pool_generation

    def warm(self, network) -> int:
        """Build the worker pool (and shm ring) before any traffic.

        Pool construction — forkserver spin-up, shipping the network to
        every worker, warm numpy imports — costs tens of milliseconds;
        paying it at daemon startup instead of inside the first
        request's deadline is what makes the first wave's latency look
        like every other wave's. Idempotent: a live pool for the same
        network is left untouched. Returns the pool generation.

        On a fork-context pool, warming also activates the *express
        lanes*: every worker parks on a dedicated duplex pipe, and
        subsequent waves are dispatched straight over those pipes (one
        write, one read per group) instead of through the executor's
        management-thread/queue machinery — see :meth:`_run_lanes`.
        """
        with self._lock:
            if (
                self._pool is not None
                and self._pool_network is network
                and self._lanes is not None
            ):
                # Already warm AND parked: the workers are occupied by
                # their lane loops, so a second round of warmup tasks
                # would wait forever. The idempotency contract covers
                # this — there is nothing left to warm.
                return self._pool_generation
        self._ensure_pool(network)
        if self.transport == "shm":
            try:
                self._ensure_ring()
            except transport.TransportUnavailable:
                self.transport = "pickle"
        # ProcessPoolExecutor spawns its processes lazily on first
        # submit; force every worker up *now* and have each build its
        # sampler tables, so no real request pays spawn or table cost.
        futures = [self._pool.submit(_worker_warmup) for _ in range(self.workers)]
        for future in futures:
            future.result()
        with self._lock:
            if self._pool is not None and self._pool_network is network:
                with self._lane_lock:
                    pending, self._lane_pending = self._lane_pending, None
                if pending is not None and self._lanes is None:
                    # Park every worker on its lane. The N lane tasks
                    # are claimed by N distinct workers because a
                    # parked worker never returns to take another.
                    for index in range(len(pending)):
                        self._pool.submit(_worker_lane, index)
                    with self._lane_lock:
                        self._lanes = pending
        return self._pool_generation

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Shut the worker pool and activation ring down (idempotent)."""
        with self._lock:
            self._close_lanes()
            if self._pool is not None:
                self._pool.shutdown(wait=True)
                self._pool = None
                self._pool_network = None
            if self._ring is not None:
                self._ring.close()
                self._ring = None

    def __enter__(self) -> "ShardParallelScheduler":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<scheduler {self.name} workers={self.workers} "
            f"inner={self.inner!r} transport={self.transport!r}>"
        )


# ----------------------------------------------------------------------
# Tile-parallel: concurrent column tiles within each shard.
# ----------------------------------------------------------------------
class _TileSplitStrategy:
    """Layer-level strategy wrapper that executes a crossbar layer's
    column tiles concurrently on a thread pool.

    Every tile samples through its *own* generator
    (``layer.tiles[i][j]`` each carry one), so execution order across
    tiles cannot change the draws — the output is bit-identical to the
    serial packed path for the same layer state. Layers with a single
    column tile (and all non-crossbar work) delegate to the base
    strategy untouched.
    """

    def __init__(self, base, pool: ThreadPoolExecutor, dense: bool) -> None:
        self._base = base
        self._pool = pool
        self._dense = dense
        self.deterministic = getattr(base, "deterministic", False)
        self.name = f"tile-parallel({getattr(base, 'name', base)!r})"

    def run_layer(self, layer, flat, *, rng, validate=None):
        if layer.n_col_tiles < 2 or self.deterministic:
            return self._base.run_layer(layer, flat, rng=rng, validate=validate)
        chunks = layer._split_activations(flat)
        n = chunks[0].shape[0]

        def one_tile(j: int) -> np.ndarray:
            if self._dense:
                streams = np.stack(
                    [
                        layer.tiles[i][j].sample_window(chunks[i], validate=validate)
                        for i in range(layer.n_row_tiles)
                    ],
                    axis=0,
                )
                return layer.module.accumulate(streams)
            words = np.stack(
                [
                    layer.tiles[i][j]
                    .sample_window(chunks[i], packed=True, validate=validate)
                    .words
                    for i in range(layer.n_row_tiles)
                ],
                axis=0,
            )
            return layer.module.accumulate_packed(words)

        outputs = list(self._pool.map(one_tile, range(layer.n_col_tiles)))
        # Counters fold in once per layer pass (the per-tile workers
        # must not race on them).
        layer.n_passes += layer.n_row_tiles * layer.n_col_tiles
        layer.n_inferences += n
        return np.concatenate(outputs, axis=-1)


@register_scheduler(
    "tile-parallel",
    summary="in-process shards, concurrent column tiles per stage",
)
class TileParallelScheduler:
    """Serial over shards, parallel over each crossbar stage's column
    tiles — the intra-shard axis the shard schedulers leave untouched.

    Tiles execute the bit-level path on their own per-tile generators,
    so results are **bit-identical to the serial** ``"stochastic-packed"``
    **backend** for the same session seed (per-tile independence makes
    tile execution order irrelevant). Pair it with the
    ``"stochastic-dense"`` strategy to split the dense reference path
    instead.
    """

    stateless = False
    #: Asks the session to compile the ExecutionPlan task DAG (the
    #: fan-out decision reads it); plain shard schedulers skip that
    #: per-request compile entirely.
    needs_task_graph = True

    def __init__(self, workers: Optional[int] = None) -> None:
        if workers is not None and workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.workers = _worker_cap(int(workers or os.cpu_count() or 1))
        self._pool: Optional[ThreadPoolExecutor] = None
        self._serial = SerialScheduler()
        self._lock = threading.Lock()

    def _ensure_pool(self) -> ThreadPoolExecutor:
        with self._lock:
            if self._pool is None:
                self._pool = ThreadPoolExecutor(
                    max_workers=self.workers,
                    thread_name_prefix="repro-tile",
                )
            return self._pool

    def run_shards(
        self,
        network,
        x: np.ndarray,
        plan,
        *,
        strategy,
        exec_lock=None,
        rng=None,
        deadline_s: Optional[float] = None,
    ) -> List[ShardResult]:
        # ``deadline_s`` is accepted for protocol parity and ignored:
        # tiles run in-process and always complete, like the serial
        # rescue path.
        # The plan's task DAG tells us whether any stage actually fans
        # out; a pure single-tile network skips the wrapper entirely.
        fans_out = True
        if isinstance(plan, ExecutionPlan):
            fans_out = any(
                task.tile is not None and task.tile > 0 for task in plan.tasks
            )
        if not fans_out:
            return self._serial.run_shards(
                network, x, plan, strategy=strategy, exec_lock=exec_lock, rng=rng
            )
        dense = getattr(strategy, "name", "") == "stochastic-dense"
        wrapped = _TileSplitStrategy(strategy, self._ensure_pool(), dense)
        return self._serial.run_shards(
            network, x, plan, strategy=wrapped, exec_lock=exec_lock, rng=rng
        )

    def close(self) -> None:
        with self._lock:
            if self._pool is not None:
                self._pool.shutdown(wait=True)
                self._pool = None

    def __enter__(self) -> "TileParallelScheduler":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<scheduler {self.name} workers={self.workers}>"


# ----------------------------------------------------------------------
# Adaptive: the cost-model chooser over the other three.
# ----------------------------------------------------------------------
@register_scheduler(
    "adaptive",
    summary="cost-model chooser: serial / shard / tile fan-out per plan",
)
class AdaptiveScheduler:
    """Choose the fan-out per request from the compiled plan's costs.

    Before executing, the scheduler ranks the *correct* candidate modes
    (:func:`~repro.runtime.costmodel.candidate_modes`: shard fan-out
    needs seeded shards and a registered backend name; tile fan-out
    needs a per-tile-generator backend) with the
    :class:`~repro.runtime.costmodel.CostModel` and dispatches the plan
    to the matching sub-scheduler. Because every candidate is
    bit-identical to serial for the same plan, the choice can never
    change the logits — only the wall time. Plans whose total estimated
    windows sit below the model's break-even threshold short-circuit to
    serial, so tiny requests never pay pool tax.

    The per-stage decisions of the latest run (chosen mode, predicted
    vs measured cost) are exposed as :attr:`last_decisions` /
    :attr:`last_choice`; the :class:`~repro.api.Session` copies them
    into :attr:`~repro.api.results.InferenceResult.decisions` and the
    :class:`~repro.runtime.daemon.ServingDaemon` into
    :attr:`~repro.runtime.daemon.DaemonStats.decisions`.

    Parameters
    ----------
    workers:
        Fan-out width for both the process pool and the tile threads
        (defaults to the CPU count, capped by
        ``REPRO_MAX_POOL_WORKERS``).
    cost_model:
        A ready-made :class:`~repro.runtime.costmodel.CostModel`, a
        :class:`~repro.runtime.costmodel.CostCoefficients`, or a path
        to saved coefficients JSON. ``None`` honors the
        ``REPRO_COST_COEFFICIENTS`` environment variable and falls back
        to the defaults.
    recovery:
        :class:`~repro.runtime.recovery.RetryPolicy` handed to the
        shard-parallel sub-schedulers (``None`` = environment
        defaults); :attr:`last_recovery` relays what the chosen path
        went through.

    ``REPRO_FORCE_SCHEDULER`` (environment) pins the choice to one of
    ``serial`` / ``shard-parallel`` / ``tile-parallel`` for A/B runs;
    forcing a mode that is unavailable for correctness reasons raises.
    """

    stateless = False
    #: The chooser reads the task DAG, so the session must compile it.
    needs_task_graph = True
    #: Plans must carry real seeds — the chooser may send them to the
    #: process pool, where seedless shards would replay each worker's
    #: identical compile-time streams.
    requires_seeds = True

    def __init__(
        self,
        workers: Optional[int] = None,
        cost_model=None,
        recovery: Optional[RetryPolicy] = None,
    ) -> None:
        if workers is not None and workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.workers = _worker_cap(int(workers or os.cpu_count() or 1))
        self.cost_model: CostModel = load_cost_model(cost_model)
        self.recovery = recovery if recovery is not None else RetryPolicy.from_env()
        self._serial = SerialScheduler()
        self._tile: Optional[TileParallelScheduler] = None
        # One pool per inner backend name: a scheduler shared by
        # sessions with different backends must never tear a pool down
        # under another thread's in-flight run.
        self._shards: Dict[str, ShardParallelScheduler] = {}
        self._lock = threading.Lock()
        # Decision telemetry is thread-local: a scheduler instance
        # shared across serving threads reports each request's own
        # choice to the thread that ran it.
        self._decisions = threading.local()
        # Repeated identical requests (a session re-running the same
        # burst, a daemon's steady-state wave shape) re-derive the exact
        # same chooser outcome: predictions depend only on the memoized
        # task graph and the chooser inputs, never on the shard seeds.
        # Memoize on those and rebuild only the (mutable) per-run
        # telemetry records, so steady-state dispatch skips the
        # prediction walk entirely.
        self._choice_memo: Dict[tuple, AdaptiveChoice] = {}

    @property
    def last_choice(self) -> Optional[AdaptiveChoice]:
        """The calling thread's most recent chooser outcome (None
        before this thread has executed a plan)."""
        return getattr(self._decisions, "choice", None)

    @property
    def last_decisions(self):
        """Per-stage decision records of the calling thread's most
        recent run (what :attr:`InferenceResult.decisions` surfaces)."""
        choice = self.last_choice
        return None if choice is None else choice.stages

    @property
    def last_recovery(self) -> Optional[RecoveryLog]:
        """The calling thread's most recent run's recovery log (None
        unless the chooser dispatched to a recovering path)."""
        return getattr(self._decisions, "recovery", None)

    # ------------------------------------------------------------------
    def run_shards(
        self,
        network,
        x: np.ndarray,
        plan,
        *,
        strategy,
        exec_lock=None,
        rng=None,
        deadline_s: Optional[float] = None,
    ) -> List[ShardResult]:
        if not isinstance(plan, ExecutionPlan):
            # Callers that hand over a bare ShardPlan (the daemon's
            # legacy path) still get the chooser: compile the DAG here.
            plan = compile_plan(
                network,
                _shard_plan_of(plan),
                input_shape=np.asarray(x).shape[1:],
            )
        choice = self._choose(plan, strategy)
        self._decisions.recovery = None
        if choice.mode == "shard-parallel":
            scheduler = self._ensure_shard(getattr(strategy, "name"))
            outputs = scheduler.run_shards(
                network,
                x,
                plan,
                exec_lock=exec_lock,
                rng=rng,
                deadline_s=deadline_s,
            )
            self._decisions.recovery = scheduler.last_recovery
        elif choice.mode == "tile-parallel":
            scheduler = self._ensure_tile()
            outputs = scheduler.run_shards(
                network, x, plan, strategy=strategy, exec_lock=exec_lock, rng=rng
            )
        else:
            outputs = self._serial.run_shards(
                network, x, plan, strategy=strategy, exec_lock=exec_lock, rng=rng
            )
        self._record_measured(choice, outputs)
        self._decisions.choice = choice
        return outputs

    def _choose(self, plan: ExecutionPlan, strategy) -> AdaptiveChoice:
        name = getattr(strategy, "name", None)
        modes = candidate_modes(
            plan,
            backend_name=name,
            deterministic=getattr(strategy, "deterministic", False),
        )
        force = env_str("REPRO_FORCE_SCHEDULER")
        if force is not None and force not in ADAPTIVE_MODES:
            raise ValueError(
                f"REPRO_FORCE_SCHEDULER must be one of "
                f"{', '.join(ADAPTIVE_MODES)}; got {force!r}"
            )
        # A live pool for this backend means shard-parallel predictions
        # skip the one-time warmup charge — prewarmed daemons (and any
        # session after its first pooled run) compete on marginal cost.
        warm = (self.pool_generation(name) or 0) > 0 if name else False
        # plan.tasks is the task-graph tuple compile_plan memoizes on
        # the network (seed-independent, alive as long as the network),
        # so its identity keys equivalent plans across runs.
        key = (
            id(plan.tasks),
            id(self.cost_model.coefficients),
            name,
            tuple(modes),
            force,
            warm,
        )
        cached = self._choice_memo.get(key)
        if cached is None:
            if len(self._choice_memo) >= 128:
                self._choice_memo.clear()
            cached = self._choice_memo[key] = self.cost_model.choose(
                plan, workers=self.workers, modes=modes, force=force, warm=warm
            )
        # Fresh telemetry records per run: _record_measured fills
        # measured_s in place, and each InferenceResult must keep its
        # own copies.
        return AdaptiveChoice(
            mode=cached.mode,
            predictions=dict(cached.predictions),
            stages=[replace(s, measured_s=None) for s in cached.stages],
            forced=cached.forced,
            reason=cached.reason,
        )

    @staticmethod
    def _record_measured(choice: AdaptiveChoice, outputs: List[ShardResult]) -> None:
        """Fill each stage decision's ``measured_s`` from the executed
        telemetry (summed across shards, without mutating the records
        the session will merge afterwards)."""
        measured: Dict[int, float] = {}
        for _, records in outputs:
            for record in records:
                measured[record.index] = (
                    measured.get(record.index, 0.0) + record.wall_time_s
                )
        for decision in choice.stages:
            decision.measured_s = measured.get(decision.stage)

    # ------------------------------------------------------------------
    def _ensure_shard(self, inner: str) -> ShardParallelScheduler:
        with self._lock:
            scheduler = self._shards.get(inner)
            if scheduler is None:
                scheduler = self._shards[inner] = ShardParallelScheduler(
                    workers=self.workers, inner=inner, recovery=self.recovery
                )
            return scheduler

    def _ensure_tile(self) -> TileParallelScheduler:
        with self._lock:
            if self._tile is None:
                self._tile = TileParallelScheduler(workers=self.workers)
            return self._tile

    # ------------------------------------------------------------------
    def warm(self, network, inner: str = "stochastic") -> int:
        """Pre-build the shard-parallel pool for ``inner`` so the first
        request the chooser sends to the pool pays no construction cost
        (the daemon calls this at startup). Returns the pool generation."""
        return self._ensure_shard(inner).warm(network)

    def pool_generation(self, inner: str = "stochastic") -> Optional[int]:
        """The shard pool's generation for ``inner`` (None before any
        pool exists for that backend)."""
        with self._lock:
            scheduler = self._shards.get(inner)
        return None if scheduler is None else scheduler.pool_generation

    # ------------------------------------------------------------------
    def close(self) -> None:
        with self._lock:
            for scheduler in self._shards.values():
                scheduler.close()
            self._shards.clear()
            if self._tile is not None:
                self._tile.close()
                self._tile = None

    def __enter__(self) -> "AdaptiveScheduler":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<scheduler {self.name} workers={self.workers} "
            f"coefficients={self.cost_model.coefficients.source!r}>"
        )
