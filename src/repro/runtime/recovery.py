"""Failure classification, retry/backoff policy, and the recovery loop.

The runtime's fault-tolerance contract: infrastructure failures are
**retryable** — a dead pool worker (``BrokenProcessPool``), a shared-
memory transport outage (``TransportUnavailable``), a deadline blown by
a straggler (:class:`DeadlineExceeded`), a broken pipe — and are
retried with exponential backoff (rebuilding the broken resource in
between) before falling back to **serial re-execution**, which always
completes and is *bit-identical* to the faulted attempt because every
shard re-derives its sampler state from its own plan seed. Payload
failures are **fatal** — a malformed request, a shape mismatch, a
:class:`PoisonedPayload` — and surface immediately to the caller with
the original traceback chained (``raise ... from exc``), because
retrying a request that cannot execute only burns the queue.

:func:`run_with_recovery` is the one loop every recovering execution
path shares (the shard-parallel scheduler, the serving daemon); it
returns the result together with a :class:`RecoveryLog` describing what
it took, which surfaces as
:attr:`repro.api.results.InferenceResult.recovery` and in the
:class:`~repro.runtime.daemon.DaemonStats` counters.
"""

from __future__ import annotations

import queue
import time
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Callable, List, Optional

from repro.runtime.env import env_bool, env_float, env_int


class DeadlineExceeded(TimeoutError):
    """A request ran past its deadline (stragglers are abandoned and
    the work re-executes serially)."""


class QueueFull(queue.Full):
    """The daemon rejected a request because its queue is at capacity
    (``admission="reject"``, or a blocking ``submit`` timed out).

    Subclasses :class:`queue.Full` so pre-existing callers that caught
    the stdlib type keep working.
    """


class PoisonedPayload(ValueError):
    """A request payload that deterministically cannot execute —
    the canonical *fatal* (never retried) failure."""


class RequestError(RuntimeError):
    """An infrastructure failure that outlived every recovery attempt.

    Carries ``kind`` (``"retryable"`` / ``"fatal"``) and chains the
    original failure as ``__cause__`` so the future a caller holds has
    an actionable traceback.
    """

    def __init__(self, message: str, *, kind: str = "retryable") -> None:
        super().__init__(message)
        self.kind = kind


#: Exception types the runtime will retry. OSError covers the pipe /
#: shared-memory breakage a dying worker leaves behind; TimeoutError
#: covers both stdlib timeouts and DeadlineExceeded.
_RETRYABLE = (BrokenProcessPool, TimeoutError, ConnectionError, EOFError, OSError)


def classify(exc: BaseException) -> str:
    """``"retryable"`` or ``"fatal"`` for one failure.

    Infrastructure failures (worker death, transport outage, timeouts)
    are retryable; payload/programming errors — and anything derived
    from ``BaseException`` only, like ``KeyboardInterrupt`` — are
    fatal.
    """
    if isinstance(exc, RequestError):
        return exc.kind
    if isinstance(exc, PoisonedPayload):
        return "fatal"
    # Lazy so this module stays import-cycle-free (transport imports
    # the faults module, which imports this one).
    from repro.runtime.transport import TransportUnavailable

    if isinstance(exc, (TransportUnavailable,) + _RETRYABLE):
        return "retryable"
    return "fatal"


def classified(exc: BaseException) -> BaseException:
    """Wrap a retryable infrastructure failure in :class:`RequestError`
    (cause-chained); fatal failures pass through untouched — their own
    traceback *is* the actionable cause."""
    if isinstance(exc, RequestError):
        return exc
    if classify(exc) == "fatal":
        return exc
    try:
        raise RequestError(
            f"request failed after recovery: {type(exc).__name__}: {exc}",
            kind="retryable",
        ) from exc
    except RequestError as wrapped:
        return wrapped


# ----------------------------------------------------------------------
@dataclass(frozen=True)
class RetryPolicy:
    """How hard the runtime fights before giving up on an attempt.

    ``max_retries`` bounds re-submissions after the first attempt;
    backoff grows exponentially (``backoff_base_s * factor**retry``),
    capped at ``max_backoff_s``. ``deadline_s`` is the default
    per-request deadline (``None`` = none); ``serial_fallback`` enables
    the bit-identical in-process re-execution after retries are
    exhausted (or when the deadline leaves no room to retry).
    """

    max_retries: int = 2
    backoff_base_s: float = 0.05
    backoff_factor: float = 2.0
    max_backoff_s: float = 1.0
    deadline_s: Optional[float] = None
    serial_fallback: bool = True

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {self.max_retries}")
        if self.backoff_base_s < 0:
            raise ValueError(
                f"backoff_base_s must be >= 0, got {self.backoff_base_s}"
            )
        if self.backoff_factor < 1.0:
            raise ValueError(
                f"backoff_factor must be >= 1, got {self.backoff_factor}"
            )
        if self.deadline_s is not None and self.deadline_s <= 0:
            raise ValueError(f"deadline_s must be > 0, got {self.deadline_s}")

    def backoff(self, retry: int) -> float:
        """Sleep before the ``retry``-th re-submission (0-based)."""
        return min(
            self.backoff_base_s * self.backoff_factor**retry, self.max_backoff_s
        )

    @classmethod
    def from_env(cls) -> "RetryPolicy":
        """Policy from ``REPRO_MAX_RETRIES`` / ``REPRO_RETRY_BACKOFF_S``
        / ``REPRO_REQUEST_DEADLINE_S`` / ``REPRO_SERIAL_FALLBACK``
        (each optional; defaults otherwise)."""
        kwargs = {}
        retries = env_int("REPRO_MAX_RETRIES")
        if retries is not None:
            kwargs["max_retries"] = retries
        backoff = env_float("REPRO_RETRY_BACKOFF_S", minimum=0.0)
        if backoff is not None:
            kwargs["backoff_base_s"] = backoff
        deadline = env_float("REPRO_REQUEST_DEADLINE_S", minimum=0.0)
        if deadline is not None and deadline > 0:
            kwargs["deadline_s"] = deadline
        fallback = env_bool("REPRO_SERIAL_FALLBACK")
        if fallback is not None:
            kwargs["serial_fallback"] = fallback
        return cls(**kwargs)


@dataclass
class RecoveryLog:
    """What one recovering execution went through.

    ``attempts`` counts executions (1 = clean first try); ``retries``
    records each retried failure (error type, classification, and the
    corrective action taken); ``fallback`` names the terminal rescue
    path (``"serial"``) when the attempts never succeeded;
    ``recovered`` is True when the result came from anything but a
    clean first attempt.
    """

    attempts: int = 0
    retries: List[dict] = field(default_factory=list)
    fallback: Optional[str] = None
    recovered: bool = False

    @property
    def clean(self) -> bool:
        return not self.retries and self.fallback is None

    def as_dict(self) -> dict:
        return {
            "attempts": self.attempts,
            "retries": [dict(r) for r in self.retries],
            "fallback": self.fallback,
            "recovered": self.recovered,
        }


def run_with_recovery(
    attempt: Callable[[Optional[float]], object],
    *,
    policy: RetryPolicy,
    deadline_s: Optional[float] = None,
    fallback: Optional[Callable[[], object]] = None,
    on_retry: Optional[Callable[[BaseException], Optional[str]]] = None,
    sleep: Callable[[float], None] = time.sleep,
):
    """Execute ``attempt`` under ``policy``; returns ``(result, log)``.

    ``attempt`` receives the remaining deadline budget in seconds
    (``None`` when no deadline applies) and must honor it. Retryable
    failures trigger ``on_retry(exc)`` (resource repair — rebuild a
    pool, switch transports; it may return a short label for the log),
    a backoff sleep, and a re-execution, up to ``policy.max_retries``
    times while deadline budget remains. When attempts are exhausted —
    or the deadline has left no room to retry — ``fallback`` (the
    bit-identical serial re-execution) rescues the request; without a
    fallback the last failure is re-raised. Fatal failures propagate
    immediately, untouched.
    """
    effective = deadline_s if deadline_s is not None else policy.deadline_s
    deadline = None if effective is None else time.monotonic() + effective
    log = RecoveryLog()
    retry = 0
    while True:
        remaining = None if deadline is None else deadline - time.monotonic()
        if remaining is not None and remaining <= 0 and log.attempts > 0:
            # Deadline gone mid-recovery: go straight to the rescue path.
            exc: BaseException = DeadlineExceeded(
                f"deadline of {effective:.3f}s exhausted during recovery"
            )
        else:
            log.attempts += 1
            try:
                result = attempt(remaining)
                log.recovered = not log.clean
                return result, log
            except Exception as caught:
                exc = caught
                if classify(exc) == "fatal":
                    raise
        budget_left = deadline is None or (deadline - time.monotonic()) > 0
        if retry < policy.max_retries and budget_left:
            action = on_retry(exc) if on_retry is not None else None
            log.retries.append(
                {
                    "error": type(exc).__name__,
                    "kind": "retryable",
                    "action": action or "retry",
                }
            )
            pause = policy.backoff(retry)
            if pause:
                sleep(pause)
            retry += 1
            continue
        if fallback is not None:
            log.retries.append(
                {
                    "error": type(exc).__name__,
                    "kind": "retryable",
                    "action": "serial-fallback",
                }
            )
            result = fallback()
            log.fallback = "serial"
            log.recovered = True
            return result, log
        raise classified(exc)
