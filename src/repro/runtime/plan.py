"""Execution planning: shards, stage tasks, and compiled plans.

This module is the planning layer of the runtime subsystem.  It owns
the machinery that used to be inlined in :mod:`repro.api.engine`:

* :class:`Shard` / :class:`ShardPlan` / :func:`plan_shards` — how one
  batched request is split into independently executable, independently
  seeded micro-batches;
* :func:`seed_shard` — pinning a compiled network's full sampler state
  from one shard seed (the reproducibility primitive every execution
  path shares);
* :func:`run_stages` — one micro-batch through the stage pipeline (the
  single dataflow implementation used by the serial loop, the process
  pool workers, and the tile-parallel scheduler alike);

plus the new *explicit* plan representation:

* :class:`StageTask` — one schedulable unit of work: a (shard, stage,
  column-tile) triple with an estimated cost and its dependencies;
* :class:`ExecutionPlan` — the full DAG of stage tasks for a request,
  compiled by :func:`compile_plan` from a network + :class:`ShardPlan`.
  Costs are derived from the same geometry that feeds the existing
  :class:`~repro.hardware.cost.LayerWorkload` telemetry (sampled
  observation windows for crossbar stages), so schedulers reason about
  the exact quantity the benchmarks show dominates the stochastic path.

Shards are always independent (separate rows, separate seeds); within a
shard, stage ``i`` depends on every task of stage ``i - 1``, and a
crossbar stage fans out into one task per column tile — the axis the
``"tile-parallel"`` scheduler exploits.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.api.results import LayerTelemetry
from repro.autograd.functional import im2col
from repro.hardware.cost import LayerWorkload
from repro.mapping.compiler import (
    CompiledNetwork,
    ConvStage,
    HeadStage,
    LinearStage,
    PoolStage,
    SignStage,
    ThermometerStage,
)
from repro.mapping.tiling import conv_output_geometry
from repro.utils.rng import new_rng, spawn_rng

_INT8_ONE = np.int8(1)
_INT8_MINUS_ONE = np.int8(-1)


def _run_pool(stage: PoolStage, x: np.ndarray) -> np.ndarray:
    """2x2-style max pooling of +-1 maps (a digital OR in hardware)."""
    n, c, h, w = x.shape
    k = stage.kernel
    if h % k or w % k:
        raise ValueError(f"pooling {k} does not divide spatial dims {(h, w)}")
    view = x.reshape(n, c, h // k, k, w // k, k)
    return view.max(axis=(3, 5))


# ----------------------------------------------------------------------
# Shard planning — the one splitting/seeding code path shared by every
# scheduler (serial, shard-parallel, tile-parallel) and the daemon.
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Shard:
    """One micro-batch of a request: a half-open row range plus the
    child seed that pins the network's sampler state for it."""

    index: int
    start: int
    stop: int
    seed: Optional[int]

    @property
    def rows(self) -> int:
        return self.stop - self.start


@dataclass(frozen=True)
class ShardPlan:
    """How one batched request is split into independently executable,
    independently seeded micro-batches.

    The plan is the unit of reproducibility for sharded execution:
    executing the same plan over the same inputs yields bit-identical
    logits no matter which process runs which shard, because each shard
    re-establishes the sampler state from its own ``seed`` first (see
    :func:`seed_shard`).
    """

    batch_size: int
    shards: Tuple[Shard, ...]

    def __len__(self) -> int:
        return len(self.shards)

    def offset(self, rows: int, base_index: int = 0) -> "ShardPlan":
        """This plan translated ``rows`` down a larger concatenated
        buffer (shard indices shifted by ``base_index``).

        The seeds travel untouched — which is exactly what makes a
        coalesced daemon wave bit-identical to running each request's
        own plan separately: translation changes *where* a shard's rows
        live, never *what* the shard draws.
        """
        return ShardPlan(
            batch_size=self.batch_size,
            shards=tuple(
                Shard(
                    index=base_index + s.index,
                    start=s.start + rows,
                    stop=s.stop + rows,
                    seed=s.seed,
                )
                for s in self.shards
            ),
        )


def plan_shards(
    n: int, micro_batch: Optional[int], rng: Optional[np.random.Generator] = None
) -> ShardPlan:
    """Split an ``n``-row request into ``micro_batch``-sized shards.

    ``rng`` supplies one child seed per shard (drawn in shard order, so
    the draw count — and therefore the generator's subsequent state —
    depends only on the shard count, never on who executes the plan).
    Without a generator the shards carry ``seed=None`` and execution
    falls back to each worker's own entropy.

    An empty request still gets one (empty) shard so it flows through
    the pipeline once, preserving the legacy ``(0, n_classes)`` output.
    """
    size = micro_batch or n or 1
    starts = range(0, max(n, 1), size)
    if rng is None:
        seeds: List[Optional[int]] = [None] * len(starts)
    else:
        seeds = [int(s) for s in rng.integers(0, 2**63 - 1, size=len(starts))]
    shards = tuple(
        Shard(index=i, start=lo, stop=min(lo + size, n), seed=seeds[i])
        for i, lo in enumerate(starts)
    )
    return ShardPlan(batch_size=n, shards=shards)


def concat_plans(plans: Sequence[ShardPlan]) -> ShardPlan:
    """Merge per-request plans into one combined plan over their
    concatenated row buffers.

    Each request keeps its own shard boundaries and its own seeds —
    coalescing never re-shards across request edges, so executing the
    combined plan is bit-identical to executing every constituent plan
    on its own (the daemon's coalescing guarantee).
    """
    shards: List[Shard] = []
    rows = 0
    for plan in plans:
        shifted = plan.offset(rows, base_index=len(shards))
        shards.extend(shifted.shards)
        rows += plan.batch_size
    return ShardPlan(batch_size=rows, shards=tuple(shards))


def seed_shard(
    network: CompiledNetwork, seed: Optional[int]
) -> np.random.Generator:
    """Pin every sampler in ``network`` for one shard; returns the shard
    generator (backends that draw directly, like
    ``"stochastic-fused-batched"``, consume it after the reseed).

    The derivation is pure: shard seed -> per-layer children -> per-tile
    children, so any process holding an equivalent copy of the network
    replays identical stochastic draws for the shard. ``seed=None``
    (unplanned execution) leaves the network's current streams untouched.
    """
    if seed is None:
        return new_rng(None)
    rng = new_rng(seed)
    layers = network.tiled_layers
    for layer, child in zip(layers, spawn_rng(rng, len(layers))):
        layer.reseed_sampling(child)
    return rng


def run_stages(
    network: CompiledNetwork,
    x: np.ndarray,
    strategy,
    rng: np.random.Generator,
    telemetry: List[LayerTelemetry],
) -> np.ndarray:
    """One micro-batch through the stage pipeline (same dataflow and
    dtype discipline as the legacy executor, plus telemetry).

    Module-level on purpose: the in-process serial scheduler, the
    tile-parallel scheduler, and the process-pool workers all execute
    shards through this exact function, so the paths cannot drift.
    ``telemetry`` accumulates in place — later micro-batches fold into
    the first's records.
    """
    merge = bool(telemetry)
    deterministic = getattr(strategy, "deterministic", False)
    n = x.shape[0]
    trusted = False
    for index, stage in enumerate(network.stages):
        t0 = time.perf_counter()
        record = LayerTelemetry(index=index, kind="?")
        if isinstance(stage, SignStage):
            x = np.where(x >= 0, _INT8_ONE, _INT8_MINUS_ONE)
            trusted = True
            record.kind = "encode"
        elif isinstance(stage, ThermometerStage):
            planes = [
                np.where(x - t >= 0, _INT8_ONE, _INT8_MINUS_ONE)
                for t in stage.thresholds
            ]
            x = np.concatenate(planes, axis=1)
            trusted = True
            record.kind = "encode"
        elif isinstance(stage, ConvStage):
            validate = None if not trusted else False
            h, w = x.shape[2], x.shape[3]
            h_out, w_out = conv_output_geometry(
                h, w, stage.kernel, stage.stride, stage.padding
            )
            cols, _ = im2col(x, stage.kernel, stage.stride, stage.padding)
            fan_in = cols.shape[1]
            flat = cols.transpose(0, 2, 1).reshape(-1, fan_in)
            out = strategy.run_layer(stage.layer, flat, rng=rng, validate=validate)
            out = out.reshape(n, h_out * w_out, stage.out_channels).transpose(
                0, 2, 1
            )
            x = out.reshape(n, stage.out_channels, h_out, w_out)
            x = x.astype(np.int8, copy=False)
            trusted = True
            record.kind = "conv"
            record.in_features = stage.layer.in_features
            record.out_features = stage.layer.out_features
            record.positions = h_out * w_out
            if not deterministic:
                record.windows = (
                    n
                    * record.positions
                    * stage.layer.n_row_tiles
                    * stage.layer.n_col_tiles
                )
        elif isinstance(stage, LinearStage):
            validate = None if not trusted else False
            if x.ndim > 2:
                # explicit fan-in (reshape -1 cannot infer it when N=0)
                x = x.reshape(x.shape[0], int(np.prod(x.shape[1:])))
            x = strategy.run_layer(stage.layer, x, rng=rng, validate=validate)
            x = x.astype(np.int8, copy=False)
            trusted = True
            record.kind = "linear"
            record.in_features = stage.layer.in_features
            record.out_features = stage.layer.out_features
            if not deterministic:
                record.windows = (
                    n * stage.layer.n_row_tiles * stage.layer.n_col_tiles
                )
        elif isinstance(stage, PoolStage):
            x = _run_pool(stage, x)
            record.kind = "pool"
        elif isinstance(stage, HeadStage):
            if x.ndim > 2:
                # explicit fan-in (reshape -1 cannot infer it when N=0)
                x = x.reshape(x.shape[0], int(np.prod(x.shape[1:])))
            x = stage.logits(x)
            record.kind = "head"
            record.in_features = stage.weight.shape[1]
            record.out_features = stage.weight.shape[0]
        else:  # pragma: no cover - defensive
            raise TypeError(f"unknown stage {type(stage).__name__}")
        record.wall_time_s = time.perf_counter() - t0
        if merge:
            telemetry[index].merge(record)
        else:
            telemetry.append(record)
    return x


# ----------------------------------------------------------------------
# Explicit execution plans: the (shard x stage x tile) task DAG.
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class StageTask:
    """One schedulable unit of work in an :class:`ExecutionPlan`.

    ``tile`` is the column-tile index for crossbar stages (conv/linear)
    and None for everything else; ``cost`` is the estimated number of
    sampled observation windows the task draws (zero for deterministic
    stages) — the quantity the kernel benchmarks show bounds the
    stochastic path. ``deps`` lists the task ids that must complete
    first (all tasks of the previous stage in the same shard).
    """

    id: int
    shard: int
    stage: int
    kind: str  # "encode" | "conv" | "linear" | "pool" | "head"
    tile: Optional[int]
    cost: float
    deps: Tuple[int, ...]


@dataclass(frozen=True)
class ExecutionPlan:
    """A request compiled into an explicit task DAG.

    Wraps the :class:`ShardPlan` (row ranges + seeds — the
    reproducibility contract) with per-(shard, stage, tile) tasks and
    cost estimates, plus the per-stage
    :class:`~repro.hardware.cost.LayerWorkload` records the estimates
    derive from. Tasks are stored in topological order (shard-major,
    stage-minor), so iterating ``tasks`` is a valid serial schedule.
    """

    shard_plan: ShardPlan
    tasks: Tuple[StageTask, ...]
    stage_workloads: Tuple[Optional[LayerWorkload], ...]

    @property
    def batch_size(self) -> int:
        return self.shard_plan.batch_size

    @property
    def shards(self) -> Tuple[Shard, ...]:
        return self.shard_plan.shards

    def __len__(self) -> int:
        return len(self.shard_plan)

    @property
    def total_cost(self) -> float:
        """Estimated sampled windows across every task in the plan."""
        return sum(t.cost for t in self.tasks)

    def critical_path_cost(self) -> float:
        """Longest dependency chain by cost — the plan's lower bound
        under unlimited parallelism (shards and column tiles run
        concurrently; stages within a shard cannot)."""
        finish: Dict[int, float] = {}
        best = 0.0
        for task in self.tasks:  # already topologically ordered
            start = max((finish[d] for d in task.deps), default=0.0)
            finish[task.id] = start + task.cost
            best = max(best, finish[task.id])
        return best

    def tile_width(self, stage: int) -> int:
        """How many column-tile tasks ``stage`` fans out into per shard
        (1 for non-crossbar stages) — the tile-parallel scheduler's
        fan-out decision."""
        width = 0
        for task in self.tasks:
            if task.stage == stage and task.shard == self.tasks[0].shard:
                width += 1
        return max(width, 1)

    @property
    def max_tile_width(self) -> int:
        """The widest per-stage column-tile fan-out in the plan — the
        upper bound on what tile-parallel execution can exploit."""
        if not self.tasks:
            return 1
        first = self.tasks[0].shard
        widths: Dict[int, int] = {}
        for task in self.tasks:
            if task.shard != first:
                break  # tasks are shard-major; later shards repeat the shape
            widths[task.stage] = widths.get(task.stage, 0) + 1
        return max(widths.values(), default=1)

    def shard_tasks(self, shard: int) -> List[StageTask]:
        return [t for t in self.tasks if t.shard == shard]


def _stage_geometry(network: CompiledNetwork, input_shape):
    """Per-stage (kind, positions, layer-or-None) walk.

    ``input_shape`` is the per-item shape (C, H, W) for image inputs or
    (features,) for flat inputs; conv geometry needs the spatial dims,
    everything else is shape-agnostic.
    """
    spatial = tuple(input_shape or ())
    h, w = (spatial[1], spatial[2]) if len(spatial) == 3 else (0, 0)
    records = []
    for stage in network.stages:
        if isinstance(stage, (SignStage, ThermometerStage)):
            records.append(("encode", 1, None))
        elif isinstance(stage, ConvStage):
            h, w = conv_output_geometry(
                h, w, stage.kernel, stage.stride, stage.padding
            )
            records.append(("conv", h * w, stage.layer))
        elif isinstance(stage, PoolStage):
            h //= stage.kernel
            w //= stage.kernel
            records.append(("pool", 1, None))
        elif isinstance(stage, LinearStage):
            records.append(("linear", 1, stage.layer))
        elif isinstance(stage, HeadStage):
            records.append(("head", 1, None))
        else:  # pragma: no cover - defensive
            raise TypeError(f"unknown stage {type(stage).__name__}")
    return records


def compile_plan(
    network: CompiledNetwork,
    shard_plan: ShardPlan,
    input_shape=None,
) -> ExecutionPlan:
    """Compile a network + shard plan into an explicit task DAG.

    One task per (shard, stage) pair, fanned out per column tile for
    crossbar stages. Task costs are estimated sampled windows —
    ``rows * positions * n_row_tiles`` per column tile, the same
    geometry the :class:`~repro.api.results.LayerTelemetry` workload
    records report after the fact — so a scheduler's view of the plan
    matches what the telemetry will measure.
    """
    geometry = _stage_geometry(network, input_shape)
    workloads: List[Optional[LayerWorkload]] = []
    for (kind, positions, layer), stage in zip(geometry, network.stages):
        if kind in ("conv", "linear"):
            workloads.append(
                LayerWorkload(
                    in_features=layer.in_features,
                    out_features=layer.out_features,
                    positions=positions,
                )
            )
        elif kind == "head":
            workloads.append(
                LayerWorkload(
                    in_features=stage.weight.shape[1],
                    out_features=stage.weight.shape[0],
                )
            )
        else:
            workloads.append(None)

    tasks: List[StageTask] = []
    for shard in shard_plan.shards:
        rows = shard.rows
        previous: Tuple[int, ...] = ()
        for stage_index, (kind, positions, layer) in enumerate(geometry):
            current: List[int] = []
            if layer is not None:
                per_tile = float(rows * positions * layer.n_row_tiles)
                for tile in range(layer.n_col_tiles):
                    task = StageTask(
                        id=len(tasks),
                        shard=shard.index,
                        stage=stage_index,
                        kind=kind,
                        tile=tile,
                        cost=per_tile,
                        deps=previous,
                    )
                    tasks.append(task)
                    current.append(task.id)
            else:
                task = StageTask(
                    id=len(tasks),
                    shard=shard.index,
                    stage=stage_index,
                    kind=kind,
                    tile=None,
                    cost=0.0,
                    deps=previous,
                )
                tasks.append(task)
                current.append(task.id)
            previous = tuple(current)
    return ExecutionPlan(
        shard_plan=shard_plan,
        tasks=tuple(tasks),
        stage_workloads=tuple(workloads),
    )
