"""Execution planning: shards, stage tasks, and compiled plans.

This module is the planning layer of the runtime subsystem.  It owns
the machinery that used to be inlined in :mod:`repro.api.engine`:

* :class:`Shard` / :class:`ShardPlan` / :func:`plan_shards` — how one
  batched request is split into independently executable, independently
  seeded micro-batches;
* :func:`seed_shard` — pinning a compiled network's full sampler state
  from one shard seed (the reproducibility primitive every execution
  path shares);
* :func:`run_stages` — one micro-batch through the stage pipeline (the
  single dataflow implementation used by the serial loop, the process
  pool workers, and the tile-parallel scheduler alike);

plus the new *explicit* plan representation:

* :class:`StageTask` — one schedulable unit of work: a (shard, stage,
  column-tile) triple with an estimated cost and its dependencies;
* :class:`ExecutionPlan` — the full DAG of stage tasks for a request,
  compiled by :func:`compile_plan` from a network + :class:`ShardPlan`.
  Costs are derived from the same geometry that feeds the existing
  :class:`~repro.hardware.cost.LayerWorkload` telemetry (sampled
  observation windows for crossbar stages), so schedulers reason about
  the exact quantity the benchmarks show dominates the stochastic path.

Shards are always independent (separate rows, separate seeds); within a
shard, stage ``i`` depends on every task of stage ``i - 1``, and a
crossbar stage fans out into one task per column tile — the axis the
``"tile-parallel"`` scheduler exploits.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.api.results import LayerTelemetry
from repro.autograd.functional import im2col
from repro.hardware.cost import LayerWorkload
from repro.mapping.compiler import (
    CompiledNetwork,
    ConvStage,
    HeadStage,
    LinearStage,
    PoolStage,
    SignStage,
    ThermometerStage,
)
from repro.mapping.tiling import conv_output_geometry
from repro.sc.binomial import DrawBatch
from repro.utils.rng import new_rng

_INT8_ONE = np.int8(1)
_INT8_MINUS_ONE = np.int8(-1)


def _run_pool(stage: PoolStage, x: np.ndarray) -> np.ndarray:
    """2x2-style max pooling of +-1 maps (a digital OR in hardware)."""
    n, c, h, w = x.shape
    k = stage.kernel
    if h % k or w % k:
        raise ValueError(f"pooling {k} does not divide spatial dims {(h, w)}")
    view = x.reshape(n, c, h // k, k, w // k, k)
    return view.max(axis=(3, 5))


# ----------------------------------------------------------------------
# Shard planning — the one splitting/seeding code path shared by every
# scheduler (serial, shard-parallel, tile-parallel) and the daemon.
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Shard:
    """One micro-batch of a request: a half-open row range plus the
    child seed that pins the network's sampler state for it."""

    index: int
    start: int
    stop: int
    seed: Optional[int]

    @property
    def rows(self) -> int:
        return self.stop - self.start


@dataclass(frozen=True)
class ShardPlan:
    """How one batched request is split into independently executable,
    independently seeded micro-batches.

    The plan is the unit of reproducibility for sharded execution:
    executing the same plan over the same inputs yields bit-identical
    logits no matter which process runs which shard, because each shard
    re-establishes the sampler state from its own ``seed`` first (see
    :func:`seed_shard`).
    """

    batch_size: int
    shards: Tuple[Shard, ...]

    def __len__(self) -> int:
        return len(self.shards)

    def offset(self, rows: int, base_index: int = 0) -> "ShardPlan":
        """This plan translated ``rows`` down a larger concatenated
        buffer (shard indices shifted by ``base_index``).

        The seeds travel untouched — which is exactly what makes a
        coalesced daemon wave bit-identical to running each request's
        own plan separately: translation changes *where* a shard's rows
        live, never *what* the shard draws.
        """
        return ShardPlan(
            batch_size=self.batch_size,
            shards=tuple(
                Shard(
                    index=base_index + s.index,
                    start=s.start + rows,
                    stop=s.stop + rows,
                    seed=s.seed,
                )
                for s in self.shards
            ),
        )


def plan_shards(
    n: int, micro_batch: Optional[int], rng: Optional[np.random.Generator] = None
) -> ShardPlan:
    """Split an ``n``-row request into ``micro_batch``-sized shards.

    ``rng`` supplies one child seed per shard (drawn in shard order, so
    the draw count — and therefore the generator's subsequent state —
    depends only on the shard count, never on who executes the plan).
    Without a generator the shards carry ``seed=None`` and execution
    falls back to each worker's own entropy.

    An empty request still gets one (empty) shard so it flows through
    the pipeline once, preserving the legacy ``(0, n_classes)`` output.
    """
    size = micro_batch or n or 1
    starts = range(0, max(n, 1), size)
    if rng is None:
        seeds: List[Optional[int]] = [None] * len(starts)
    else:
        seeds = [int(s) for s in rng.integers(0, 2**63 - 1, size=len(starts))]
    shards = tuple(
        Shard(index=i, start=lo, stop=min(lo + size, n), seed=seeds[i])
        for i, lo in enumerate(starts)
    )
    return ShardPlan(batch_size=n, shards=shards)


def concat_plans(plans: Sequence[ShardPlan]) -> ShardPlan:
    """Merge per-request plans into one combined plan over their
    concatenated row buffers.

    Each request keeps its own shard boundaries and its own seeds —
    coalescing never re-shards across request edges, so executing the
    combined plan is bit-identical to executing every constituent plan
    on its own (the daemon's coalescing guarantee).
    """
    shards: List[Shard] = []
    rows = 0
    for plan in plans:
        shifted = plan.offset(rows, base_index=len(shards))
        shards.extend(shifted.shards)
        rows += plan.batch_size
    return ShardPlan(batch_size=rows, shards=tuple(shards))


def seed_shard(
    network: CompiledNetwork, seed: Optional[int]
) -> np.random.Generator:
    """Pin every sampler in ``network`` for one shard; returns the shard
    generator (backends that draw directly, like
    ``"stochastic-fused-batched"``, consume it after the reseed).

    The derivation is pure: shard seed -> per-layer children -> per-tile
    children, so any process holding an equivalent copy of the network
    replays identical stochastic draws for the shard. ``seed=None``
    (unplanned execution) leaves the network's current streams untouched.
    """
    if seed is None:
        return new_rng(None)
    rng = new_rng(seed)
    layers = network.tiled_layers
    # One vectorized child-seed draw (identical stream consumption to
    # the old per-layer spawn); the layers rebuild their tile/fused
    # generators lazily from the integer seeds, so re-pinning a shard
    # costs a handful of integer draws instead of one eager PCG64
    # construction per tile.
    children = rng.integers(0, 2**63 - 1, size=len(layers))
    for layer, child in zip(layers, children):
        layer.reseed_sampling(int(child))
    return rng


def run_stages(
    network: CompiledNetwork,
    x: np.ndarray,
    strategy,
    rng: np.random.Generator,
    telemetry: List[LayerTelemetry],
) -> np.ndarray:
    """One micro-batch through the stage pipeline (same dataflow and
    dtype discipline as the legacy executor, plus telemetry).

    Module-level on purpose: the in-process serial scheduler, the
    tile-parallel scheduler, and the process-pool workers all execute
    shards through this exact function, so the paths cannot drift.
    ``telemetry`` accumulates in place — later micro-batches fold into
    the first's records.
    """
    merge = bool(telemetry)
    deterministic = getattr(strategy, "deterministic", False)
    n = x.shape[0]
    # Shard-scoped backend setup: a strategy exposing ``begin_shard``
    # (the ``"stochastic-batched"`` backend) gets one look at the whole
    # micro-batch before the stage walk — where it pre-draws every
    # uniform the shard will consume in a single generator call.
    begin = getattr(strategy, "begin_shard", None)
    if begin is not None:
        begin(network, x, rng)
    trusted = False
    for index, stage in enumerate(network.stages):
        t0 = time.perf_counter()
        record = LayerTelemetry(index=index, kind="?")
        if isinstance(stage, SignStage):
            x = np.where(x >= 0, _INT8_ONE, _INT8_MINUS_ONE)
            trusted = True
            record.kind = "encode"
        elif isinstance(stage, ThermometerStage):
            planes = [
                np.where(x - t >= 0, _INT8_ONE, _INT8_MINUS_ONE)
                for t in stage.thresholds
            ]
            x = np.concatenate(planes, axis=1)
            trusted = True
            record.kind = "encode"
        elif isinstance(stage, ConvStage):
            validate = None if not trusted else False
            h, w = x.shape[2], x.shape[3]
            h_out, w_out = conv_output_geometry(
                h, w, stage.kernel, stage.stride, stage.padding
            )
            cols, _ = im2col(x, stage.kernel, stage.stride, stage.padding)
            fan_in = cols.shape[1]
            flat = cols.transpose(0, 2, 1).reshape(-1, fan_in)
            out = strategy.run_layer(stage.layer, flat, rng=rng, validate=validate)
            out = out.reshape(n, h_out * w_out, stage.out_channels).transpose(
                0, 2, 1
            )
            x = out.reshape(n, stage.out_channels, h_out, w_out)
            x = x.astype(np.int8, copy=False)
            trusted = True
            record.kind = "conv"
            record.in_features = stage.layer.in_features
            record.out_features = stage.layer.out_features
            record.positions = h_out * w_out
            if not deterministic:
                record.windows = (
                    n
                    * record.positions
                    * stage.layer.n_row_tiles
                    * stage.layer.n_col_tiles
                )
        elif isinstance(stage, LinearStage):
            validate = None if not trusted else False
            if x.ndim > 2:
                # explicit fan-in (reshape -1 cannot infer it when N=0)
                x = x.reshape(x.shape[0], int(np.prod(x.shape[1:])))
            x = strategy.run_layer(stage.layer, x, rng=rng, validate=validate)
            x = x.astype(np.int8, copy=False)
            trusted = True
            record.kind = "linear"
            record.in_features = stage.layer.in_features
            record.out_features = stage.layer.out_features
            if not deterministic:
                record.windows = (
                    n * stage.layer.n_row_tiles * stage.layer.n_col_tiles
                )
        elif isinstance(stage, PoolStage):
            x = _run_pool(stage, x)
            record.kind = "pool"
        elif isinstance(stage, HeadStage):
            if x.ndim > 2:
                # explicit fan-in (reshape -1 cannot infer it when N=0)
                x = x.reshape(x.shape[0], int(np.prod(x.shape[1:])))
            x = stage.logits(x)
            record.kind = "head"
            record.in_features = stage.weight.shape[1]
            record.out_features = stage.weight.shape[0]
        else:  # pragma: no cover - defensive
            raise TypeError(f"unknown stage {type(stage).__name__}")
        record.wall_time_s = time.perf_counter() - t0
        if merge:
            telemetry[index].merge(record)
        else:
            telemetry.append(record)
    return x


# ----------------------------------------------------------------------
# Grouped shard execution — the warm-pool fast path. Several contiguous
# shards of one request run through the stage pipeline *stage-major*:
# every numpy pass (im2col, the fused matmul, the vectorized inverse-CDF
# gather) covers all rows of the group at once, while the per-shard
# uniforms are drawn separately, in shard order, from each shard's own
# derived generator chain and concatenated along the batch axis. Because
# every stage is row-independent (shards never exchange data) and each
# shard's generator chain is reproduced exactly, the grouped result is
# bit-identical to running the shards one by one through `run_stages` —
# the amortization changes how many numpy/RNG invocations are made,
# never what any shard draws.
# ----------------------------------------------------------------------

#: Backends whose per-shard draw chains `run_stages_group` can
#: reproduce externally (their crossbar passes route through the fused
#: inverse-CDF sampler, whose uniforms can be caller-supplied).
GROUP_VECTOR_BACKENDS = frozenset({"stochastic", "stochastic-batched"})


def batched_draw_elements(
    network: CompiledNetwork, input_shape, rows: int
) -> Optional[int]:
    """Total uniforms one ``rows``-row shard consumes across the plan.

    The ``"stochastic-batched"`` backend sizes its per-shard
    :class:`~repro.sc.binomial.DrawBatch` with this: one fused crossbar
    pass draws ``n_row_tiles * rows * positions * out_features``
    uniforms (the column-value tensor's element count). Returns None
    when any crossbar stage cannot take pre-drawn uniforms (no fused
    sampler, or a window too long for the cached CDF tables) — callers
    then fall back to per-pass draws.

    The count is linear in ``rows``, and the geometry walk costs more
    than a shard pass can afford when repeated per shard, so the
    per-row total is memoized on the network (keyed by ``input_shape``;
    compiled pipelines are structurally immutable, and whether a layer
    supports batched draws is a function of its fixed geometry).
    """
    key = tuple(int(d) for d in input_shape)
    cache = getattr(network, "_draw_elements_per_row", None)
    if cache is None:
        cache = network._draw_elements_per_row = {}
    if key not in cache:
        per_row: Optional[int] = 0
        for kind, positions, layer in _stage_geometry(network, key):
            if layer is None:
                continue
            if not layer.supports_batched_draws():
                per_row = None
                break
            per_row += layer.n_row_tiles * positions * layer.out_features
        cache[key] = per_row
    per_row = cache[key]
    if per_row is None:
        return None
    return per_row * rows


def group_vectorizable(network, strategy, shards=None) -> bool:
    """Whether :func:`run_stages_group` can execute shards of this
    network under ``strategy`` in one stage-major vectorized pass.

    Requires a backend whose draw chain the group executor reproduces
    (:data:`GROUP_VECTOR_BACKENDS`), every crossbar stage on the fused
    inverse-CDF path with cached tables, and — when ``shards`` is given
    — a real seed on every shard (``seed=None`` means "the worker's own
    entropy", which cannot be replayed externally).
    """
    if getattr(strategy, "name", None) not in GROUP_VECTOR_BACKENDS:
        return False
    layers = network.tiled_layers
    if not layers:
        return False
    if not all(layer.supports_batched_draws() for layer in layers):
        return False
    if shards is not None and any(s.seed is None for s in shards):
        return False
    return True


class _FusedChainDraws:
    """Per-shard uniforms for the ``"stochastic"`` dispatch backend.

    Reproduces the exact generator chain serial execution walks: shard
    seed -> per-layer children (one vectorized draw, as in
    :func:`seed_shard`) -> per-layer tile children -> the fused
    sampler's seed (the *last* child, as in
    ``TiledLinearLayer.reseed_sampling``). Each fused generator makes
    exactly one ``.random(shape)`` call per serial layer pass, so
    building it on demand and drawing once reproduces the stream.
    """

    def __init__(self, layers, seed: int) -> None:
        rng = new_rng(seed)
        layer_seeds = rng.integers(0, 2**63 - 1, size=len(layers))
        self._fused_seeds = []
        for layer, layer_seed in zip(layers, layer_seeds):
            lrng = np.random.default_rng(int(layer_seed))
            children = lrng.integers(
                0, 2**63 - 1, size=layer.n_row_tiles * layer.n_col_tiles + 1
            )
            self._fused_seeds.append(int(children[-1]))

    def take(self, layer_index: int, shape) -> np.ndarray:
        return np.random.default_rng(self._fused_seeds[layer_index]).random(shape)


class _BatchedChainDraws:
    """Per-shard uniforms for the ``"stochastic-batched"`` backend.

    Serial chain: ``seed_shard`` burns one vectorized child-seed draw on
    the shard generator, then ``begin_shard`` pre-draws the whole
    shard's uniforms in one ``random(total)`` call. Consecutive slices
    of that call are bit-identical to the per-stage draws (the
    :class:`DrawBatch` contract).
    """

    def __init__(self, network, layers, seed: int, input_shape, rows: int) -> None:
        rng = new_rng(seed)
        rng.integers(0, 2**63 - 1, size=len(layers))  # seed_shard's draw
        total = batched_draw_elements(network, input_shape, rows)
        self._draws = DrawBatch(rng, total)

    def take(self, layer_index: int, shape) -> np.ndarray:
        return self._draws.take(shape)


def run_stages_group(
    network: CompiledNetwork,
    x: np.ndarray,
    shard_specs: Sequence[Tuple[Optional[int], int, int]],
    strategy,
) -> List[Tuple[np.ndarray, List[LayerTelemetry]]]:
    """Several contiguous shards through the pipeline in one vectorized
    pass; bit-identical to per-shard :func:`run_stages` execution.

    ``x`` is the group's row slab; ``shard_specs`` lists ``(seed,
    start, stop)`` row ranges into it — contiguous, ordered, covering
    the slab. Check :func:`group_vectorizable` first. Returns one
    ``(logits, telemetry)`` pair per spec, in order.
    """
    name = getattr(strategy, "name", None)
    if name not in GROUP_VECTOR_BACKENDS:  # pragma: no cover - defensive
        raise ValueError(f"backend {name!r} is not group-vectorizable")
    layers = network.tiled_layers
    specs = specs_list(shard_specs)
    n = x.shape[0]
    input_shape = x.shape[1:]
    if name == "stochastic":
        sources = [_FusedChainDraws(layers, seed) for seed, _, _ in specs]
    else:
        sources = [
            _BatchedChainDraws(network, layers, seed, input_shape, stop - start)
            for seed, start, stop in specs
        ]

    telemetry: List[List[LayerTelemetry]] = [[] for _ in specs]
    row_counts = [stop - start for _, start, stop in specs]
    total_rows = max(n, 1)
    layer_index = 0
    trusted = False

    def crossbar_pass(layer, flat, validate, rows_scale):
        """One fused crossbar pass over the group slab.

        ``rows_scale`` maps shard rows to rows of ``flat`` (the conv
        ``positions`` factor); shard blocks are contiguous along the
        batch axis, so the per-shard uniforms concatenate there.
        """
        values, _count = layer._fused_values(flat, validate)
        k = values.shape[0]
        out = values.shape[-1]
        pieces = [
            src.take(layer_index, (k, rows * rows_scale, out))
            for src, rows in zip(sources, row_counts)
        ]
        u = pieces[0] if len(pieces) == 1 else np.concatenate(pieces, axis=1)
        counts = layer._fused_sampler._sample_counts_for_values(
            values, layer.config.window_bits, u=u
        )
        layer.n_passes += layer.n_row_tiles * layer.n_col_tiles * len(specs)
        layer.n_inferences += flat.shape[0]
        return layer.module.accumulate_counts(counts)

    for index, stage in enumerate(network.stages):
        t0 = time.perf_counter()
        records = [LayerTelemetry(index=index, kind="?") for _ in specs]
        if isinstance(stage, SignStage):
            x = np.where(x >= 0, _INT8_ONE, _INT8_MINUS_ONE)
            trusted = True
            for record in records:
                record.kind = "encode"
        elif isinstance(stage, ThermometerStage):
            planes = [
                np.where(x - t >= 0, _INT8_ONE, _INT8_MINUS_ONE)
                for t in stage.thresholds
            ]
            x = np.concatenate(planes, axis=1)
            trusted = True
            for record in records:
                record.kind = "encode"
        elif isinstance(stage, ConvStage):
            validate = None if not trusted else False
            h, w = x.shape[2], x.shape[3]
            h_out, w_out = conv_output_geometry(
                h, w, stage.kernel, stage.stride, stage.padding
            )
            cols, _ = im2col(x, stage.kernel, stage.stride, stage.padding)
            fan_in = cols.shape[1]
            flat = cols.transpose(0, 2, 1).reshape(-1, fan_in)
            out = crossbar_pass(stage.layer, flat, validate, h_out * w_out)
            out = out.reshape(n, h_out * w_out, stage.out_channels).transpose(
                0, 2, 1
            )
            x = out.reshape(n, stage.out_channels, h_out, w_out)
            x = x.astype(np.int8, copy=False)
            trusted = True
            layer_index += 1
            for record, rows in zip(records, row_counts):
                record.kind = "conv"
                record.in_features = stage.layer.in_features
                record.out_features = stage.layer.out_features
                record.positions = h_out * w_out
                record.windows = (
                    rows
                    * record.positions
                    * stage.layer.n_row_tiles
                    * stage.layer.n_col_tiles
                )
        elif isinstance(stage, LinearStage):
            validate = None if not trusted else False
            if x.ndim > 2:
                x = x.reshape(x.shape[0], int(np.prod(x.shape[1:])))
            x = crossbar_pass(stage.layer, x, validate, 1)
            x = x.astype(np.int8, copy=False)
            trusted = True
            layer_index += 1
            for record, rows in zip(records, row_counts):
                record.kind = "linear"
                record.in_features = stage.layer.in_features
                record.out_features = stage.layer.out_features
                record.windows = (
                    rows * stage.layer.n_row_tiles * stage.layer.n_col_tiles
                )
        elif isinstance(stage, PoolStage):
            x = _run_pool(stage, x)
            for record in records:
                record.kind = "pool"
        elif isinstance(stage, HeadStage):
            if x.ndim > 2:
                x = x.reshape(x.shape[0], int(np.prod(x.shape[1:])))
            x = stage.logits(x)
            for record, rows in zip(records, row_counts):
                record.kind = "head"
                record.in_features = stage.weight.shape[1]
                record.out_features = stage.weight.shape[0]
        else:  # pragma: no cover - defensive
            raise TypeError(f"unknown stage {type(stage).__name__}")
        elapsed = time.perf_counter() - t0
        # Stage wall time apportioned by row share — the group ran the
        # stage once; per-shard telemetry keeps the serial schema.
        for i, (record, rows) in enumerate(zip(records, row_counts)):
            record.wall_time_s = elapsed * (rows / total_rows)
            telemetry[i].append(record)

    return [
        (x[start:stop], telemetry[i])
        for i, (_seed, start, stop) in enumerate(specs)
    ]


def specs_list(shard_specs) -> List[Tuple[Optional[int], int, int]]:
    """Normalize ``shard_specs`` (tuples or :class:`Shard`-likes)."""
    out: List[Tuple[Optional[int], int, int]] = []
    for spec in shard_specs:
        if isinstance(spec, tuple):
            seed, start, stop = spec
        else:
            seed, start, stop = spec.seed, spec.start, spec.stop
        out.append((seed, int(start), int(stop)))
    return out


# ----------------------------------------------------------------------
# Explicit execution plans: the (shard x stage x tile) task DAG.
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class StageTask:
    """One schedulable unit of work in an :class:`ExecutionPlan`.

    ``tile`` is the column-tile index for crossbar stages (conv/linear)
    and None for everything else; ``cost`` is the estimated number of
    sampled observation windows the task draws (zero for deterministic
    stages) — the quantity the kernel benchmarks show bounds the
    stochastic path. ``deps`` lists the task ids that must complete
    first (all tasks of the previous stage in the same shard).
    """

    id: int
    shard: int
    stage: int
    kind: str  # "encode" | "conv" | "linear" | "pool" | "head"
    tile: Optional[int]
    cost: float
    deps: Tuple[int, ...]


@dataclass(frozen=True)
class ExecutionPlan:
    """A request compiled into an explicit task DAG.

    Wraps the :class:`ShardPlan` (row ranges + seeds — the
    reproducibility contract) with per-(shard, stage, tile) tasks and
    cost estimates, plus the per-stage
    :class:`~repro.hardware.cost.LayerWorkload` records the estimates
    derive from. Tasks are stored in topological order (shard-major,
    stage-minor), so iterating ``tasks`` is a valid serial schedule.
    """

    shard_plan: ShardPlan
    tasks: Tuple[StageTask, ...]
    stage_workloads: Tuple[Optional[LayerWorkload], ...]

    @property
    def batch_size(self) -> int:
        return self.shard_plan.batch_size

    @property
    def shards(self) -> Tuple[Shard, ...]:
        return self.shard_plan.shards

    def __len__(self) -> int:
        return len(self.shard_plan)

    @property
    def total_cost(self) -> float:
        """Estimated sampled windows across every task in the plan."""
        return sum(t.cost for t in self.tasks)

    def critical_path_cost(self) -> float:
        """Longest dependency chain by cost — the plan's lower bound
        under unlimited parallelism (shards and column tiles run
        concurrently; stages within a shard cannot)."""
        finish: Dict[int, float] = {}
        best = 0.0
        for task in self.tasks:  # already topologically ordered
            start = max((finish[d] for d in task.deps), default=0.0)
            finish[task.id] = start + task.cost
            best = max(best, finish[task.id])
        return best

    def tile_width(self, stage: int) -> int:
        """How many column-tile tasks ``stage`` fans out into per shard
        (1 for non-crossbar stages) — the tile-parallel scheduler's
        fan-out decision."""
        width = 0
        for task in self.tasks:
            if task.stage == stage and task.shard == self.tasks[0].shard:
                width += 1
        return max(width, 1)

    @property
    def max_tile_width(self) -> int:
        """The widest per-stage column-tile fan-out in the plan — the
        upper bound on what tile-parallel execution can exploit."""
        if not self.tasks:
            return 1
        first = self.tasks[0].shard
        widths: Dict[int, int] = {}
        for task in self.tasks:
            if task.shard != first:
                break  # tasks are shard-major; later shards repeat the shape
            widths[task.stage] = widths.get(task.stage, 0) + 1
        return max(widths.values(), default=1)

    def shard_tasks(self, shard: int) -> List[StageTask]:
        return [t for t in self.tasks if t.shard == shard]


def _stage_geometry(network: CompiledNetwork, input_shape):
    """Per-stage (kind, positions, layer-or-None) walk.

    ``input_shape`` is the per-item shape (C, H, W) for image inputs or
    (features,) for flat inputs; conv geometry needs the spatial dims,
    everything else is shape-agnostic.
    """
    spatial = tuple(input_shape or ())
    h, w = (spatial[1], spatial[2]) if len(spatial) == 3 else (0, 0)
    records = []
    for stage in network.stages:
        if isinstance(stage, (SignStage, ThermometerStage)):
            records.append(("encode", 1, None))
        elif isinstance(stage, ConvStage):
            h, w = conv_output_geometry(
                h, w, stage.kernel, stage.stride, stage.padding
            )
            records.append(("conv", h * w, stage.layer))
        elif isinstance(stage, PoolStage):
            h //= stage.kernel
            w //= stage.kernel
            records.append(("pool", 1, None))
        elif isinstance(stage, LinearStage):
            records.append(("linear", 1, stage.layer))
        elif isinstance(stage, HeadStage):
            records.append(("head", 1, None))
        else:  # pragma: no cover - defensive
            raise TypeError(f"unknown stage {type(stage).__name__}")
    return records


def compile_plan(
    network: CompiledNetwork,
    shard_plan: ShardPlan,
    input_shape=None,
) -> ExecutionPlan:
    """Compile a network + shard plan into an explicit task DAG.

    One task per (shard, stage) pair, fanned out per column tile for
    crossbar stages. Task costs are estimated sampled windows —
    ``rows * positions * n_row_tiles`` per column tile, the same
    geometry the :class:`~repro.api.results.LayerTelemetry` workload
    records report after the fact — so a scheduler's view of the plan
    matches what the telemetry will measure.

    Tasks and workloads depend only on the network geometry, the shard
    row layout, and the input shape — never on the seeds — so they are
    memoized on the network: an adaptive session re-planning the same
    request shape every run rebuilds nothing but the (cheap) plan
    wrapper around its freshly seeded shards.
    """
    key = (
        tuple(shard.rows for shard in shard_plan.shards),
        tuple(int(d) for d in (input_shape or ())),
    )
    cache = getattr(network, "_task_graph_cache", None)
    if cache is None:
        cache = network._task_graph_cache = {}
    cached = cache.get(key)
    if cached is not None:
        tasks, workloads = cached
        return ExecutionPlan(
            shard_plan=shard_plan,
            tasks=tasks,
            stage_workloads=workloads,
        )
    geometry = _stage_geometry(network, input_shape)
    workloads: List[Optional[LayerWorkload]] = []
    for (kind, positions, layer), stage in zip(geometry, network.stages):
        if kind in ("conv", "linear"):
            workloads.append(
                LayerWorkload(
                    in_features=layer.in_features,
                    out_features=layer.out_features,
                    positions=positions,
                )
            )
        elif kind == "head":
            workloads.append(
                LayerWorkload(
                    in_features=stage.weight.shape[1],
                    out_features=stage.weight.shape[0],
                )
            )
        else:
            workloads.append(None)

    tasks: List[StageTask] = []
    for shard in shard_plan.shards:
        rows = shard.rows
        previous: Tuple[int, ...] = ()
        for stage_index, (kind, positions, layer) in enumerate(geometry):
            current: List[int] = []
            if layer is not None:
                per_tile = float(rows * positions * layer.n_row_tiles)
                for tile in range(layer.n_col_tiles):
                    task = StageTask(
                        id=len(tasks),
                        shard=shard.index,
                        stage=stage_index,
                        kind=kind,
                        tile=tile,
                        cost=per_tile,
                        deps=previous,
                    )
                    tasks.append(task)
                    current.append(task.id)
            else:
                task = StageTask(
                    id=len(tasks),
                    shard=shard.index,
                    stage=stage_index,
                    kind=kind,
                    tile=None,
                    cost=0.0,
                    deps=previous,
                )
                tasks.append(task)
                current.append(task.id)
            previous = tuple(current)
    cache[key] = (tuple(tasks), tuple(workloads))
    return ExecutionPlan(
        shard_plan=shard_plan,
        tasks=cache[key][0],
        stage_workloads=cache[key][1],
    )
