"""Typed accessors and the declared catalog for every ``REPRO_*``
environment knob.

This module is the single boundary between the process environment and
the runtime: every knob is **declared** in :data:`ENV_CATALOG` (name,
type, default, description, consumer) and **read** through the typed
accessors below, which parse with clear, self-naming errors — a mis-set
CI variable stops the build with a message that says which variable and
why, instead of surfacing as an opaque crash deep inside a worker pool.

The ``env-discipline`` rule of the static contract checker
(:mod:`repro.analysis.rules.envdiscipline`) enforces both halves
mechanically: raw ``os.environ`` reads outside this module are lint
errors, and an accessor call naming an undeclared variable is too. The
human-readable catalog in ``docs/ENVIRONMENT.md`` is *generated* from
:func:`catalog_markdown` (``repro.cli lint-static --write-env-docs``),
so declaration, enforcement, and documentation cannot drift apart.

Deliberately dependency-free (stdlib only): imported by the test-suite
watchdog in ``tests/conftest.py`` and by every runtime module without
dragging anything else in.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Dict, Optional, Tuple


class EnvError(ValueError):
    """A declared variable is set to something unparsable. Subclasses
    :class:`ValueError` so pre-existing callers keep working."""


class UndeclaredEnvVar(KeyError):
    """An accessor was asked for a variable missing from
    :data:`ENV_CATALOG` — declare it first."""


@dataclass(frozen=True)
class EnvVar:
    """One declared knob (the unit of the generated catalog)."""

    name: str
    kind: str  # "int" | "float" | "bool" | "str" | "path"
    default: str  # human-readable default / unset behaviour
    description: str
    consumer: str  # module that reads it


#: The declared catalog. Keys are the variable names (string literals —
#: the env-discipline rule parses this dict statically).
ENV_CATALOG: Dict[str, EnvVar] = {
    "REPRO_MAX_POOL_WORKERS": EnvVar(
        name="REPRO_MAX_POOL_WORKERS",
        kind="int",
        default="unset (no cap)",
        description=(
            "Ceiling on process-pool worker counts; schedulers clamp "
            "their configured fan-out to it. Must be >= 1. CI sets 2 so "
            "pool deadlocks surface fast."
        ),
        consumer="repro.runtime.scheduler",
    ),
    "REPRO_FORCE_SCHEDULER": EnvVar(
        name="REPRO_FORCE_SCHEDULER",
        kind="str",
        default="unset (cost-model choice)",
        description=(
            "Force the adaptive scheduler's per-plan mode (one of the "
            "ADAPTIVE_MODES: serial / shard-parallel / tile-parallel), "
            "bypassing the cost model's break-even choice."
        ),
        consumer="repro.runtime.scheduler",
    ),
    "REPRO_COST_COEFFICIENTS": EnvVar(
        name="REPRO_COST_COEFFICIENTS",
        kind="path",
        default="unset (built-in defaults)",
        description=(
            "Path to saved cost-model coefficients JSON "
            "(CostCoefficients.save); load_cost_model(None) reads it."
        ),
        consumer="repro.runtime.costmodel",
    ),
    "REPRO_FAULT_PLAN": EnvVar(
        name="REPRO_FAULT_PLAN",
        kind="str",
        default="unset (no fault plan)",
        description=(
            "Fault-injection plan as inline JSON ('{...}') or a path to "
            "a JSON file; installed at first fault_point call in any "
            "process that inherits it (how the chaos CI tier configures "
            "whole runs)."
        ),
        consumer="repro.runtime.faults",
    ),
    "REPRO_MAX_RETRIES": EnvVar(
        name="REPRO_MAX_RETRIES",
        kind="int",
        default="2",
        description=(
            "Retry budget after the first attempt for retryable "
            "infrastructure failures (RetryPolicy.from_env). Must be >= 0."
        ),
        consumer="repro.runtime.recovery",
    ),
    "REPRO_RETRY_BACKOFF_S": EnvVar(
        name="REPRO_RETRY_BACKOFF_S",
        kind="float",
        default="0.05",
        description=(
            "Base of the capped exponential retry backoff, in seconds. "
            "Must be >= 0."
        ),
        consumer="repro.runtime.recovery",
    ),
    "REPRO_REQUEST_DEADLINE_S": EnvVar(
        name="REPRO_REQUEST_DEADLINE_S",
        kind="float",
        default="unset (no deadline)",
        description=(
            "Default per-request deadline in seconds; blown deadlines "
            "trigger the bit-identical serial rescue. Non-positive "
            "values are ignored (no deadline)."
        ),
        consumer="repro.runtime.recovery",
    ),
    "REPRO_SERIAL_FALLBACK": EnvVar(
        name="REPRO_SERIAL_FALLBACK",
        kind="bool",
        default="true",
        description=(
            "Enable the bit-identical in-process serial re-execution "
            "after retries are exhausted. Falsey spellings: 0 / false / "
            "no / off."
        ),
        consumer="repro.runtime.recovery",
    ),
    "REPRO_ROUTER_REPLICAS": EnvVar(
        name="REPRO_ROUTER_REPLICAS",
        kind="int",
        default="unset (1 — no router)",
        description=(
            "Default replica count for the network serving CLI "
            "(`repro serve` / `serve-bench --connect`): values >= 2 put "
            "a DaemonRouter over that many ServingDaemon replicas. "
            "Explicit --replicas flags win. Must be >= 1."
        ),
        consumer="repro.cli",
    ),
    "REPRO_ROUTER_PROBE_INTERVAL_S": EnvVar(
        name="REPRO_ROUTER_PROBE_INTERVAL_S",
        kind="float",
        default="0.25",
        description=(
            "Seconds between the DaemonRouter's health-probe sweeps "
            "over its replicas (eviction of unhealthy replicas happens "
            "inline on failure; the probe handles re-admission). Must "
            "be > 0."
        ),
        consumer="repro.net.router",
    ),
    "REPRO_STREAM_CHUNK_ROWS": EnvVar(
        name="REPRO_STREAM_CHUNK_ROWS",
        kind="int",
        default="32",
        description=(
            "Row count per PARTIAL frame when a client requests a "
            "streamed response (NetworkServer slices the resolved "
            "logits into chunks of this many rows). Must be >= 1."
        ),
        consumer="repro.net.server",
    ),
    "REPRO_TEST_TIMEOUT": EnvVar(
        name="REPRO_TEST_TIMEOUT",
        kind="float",
        default="unset (no watchdog)",
        description=(
            "In-process pytest watchdog ceiling in seconds; the run "
            "aborts with exit code 124 (matching GNU timeout) once it "
            "elapses. The Makefile's runtime/chaos tiers set it where "
            "GNU timeout is unavailable. Must be > 0."
        ),
        consumer="tests.conftest",
    ),
}


def declared_variables() -> Tuple[str, ...]:
    """Every declared variable name, sorted."""
    return tuple(sorted(ENV_CATALOG))


def describe(name: str) -> EnvVar:
    """The declaration for ``name`` (raises :class:`UndeclaredEnvVar`)."""
    try:
        return ENV_CATALOG[name]
    except KeyError:
        raise UndeclaredEnvVar(
            f"{name} is not declared in repro.runtime.env.ENV_CATALOG; "
            f"declared: {', '.join(declared_variables())}"
        ) from None


# ----------------------------------------------------------------------
# Typed accessors. All of them treat unset and blank/whitespace-only as
# "not configured" (returning the caller's default), because that is
# what every pre-existing ad-hoc reader did.
# ----------------------------------------------------------------------
def env_raw(name: str) -> Optional[str]:
    """The stripped raw value of a *declared* variable, or None when
    unset/blank."""
    describe(name)
    raw = os.environ.get(name)
    if raw is None or not raw.strip():
        return None
    return raw.strip()


def env_str(name: str, default: Optional[str] = None) -> Optional[str]:
    value = env_raw(name)
    return default if value is None else value


def env_int(
    name: str,
    default: Optional[int] = None,
    *,
    minimum: Optional[int] = None,
) -> Optional[int]:
    raw = env_raw(name)
    if raw is None:
        return default
    try:
        value = int(raw)
    except ValueError:
        raise EnvError(f"{name} must be an integer, got {raw!r}") from None
    if minimum is not None and value < minimum:
        raise EnvError(f"{name} must be >= {minimum}, got {value}")
    return value


def env_float(
    name: str,
    default: Optional[float] = None,
    *,
    minimum: Optional[float] = None,
) -> Optional[float]:
    raw = env_raw(name)
    if raw is None:
        return default
    try:
        value = float(raw)
    except ValueError:
        raise EnvError(f"{name} must be a number, got {raw!r}") from None
    if minimum is not None and value < minimum:
        raise EnvError(f"{name} must be >= {minimum}, got {value}")
    return value


_FALSEY = ("0", "false", "no", "off")
_TRUTHY = ("1", "true", "yes", "on")


def env_bool(name: str, default: Optional[bool] = None) -> Optional[bool]:
    raw = env_raw(name)
    if raw is None:
        return default
    lowered = raw.lower()
    if lowered in _FALSEY:
        return False
    if lowered in _TRUTHY:
        return True
    raise EnvError(
        f"{name} must be a boolean ({'/'.join(_TRUTHY)} or "
        f"{'/'.join(_FALSEY)}), got {raw!r}"
    )


def env_path(name: str, default: Optional[str] = None) -> Optional[str]:
    """A filesystem path value. Existence is *not* checked here — the
    consumer opens it and owns the error."""
    value = env_raw(name)
    return default if value is None else value


# ----------------------------------------------------------------------
def catalog_markdown() -> str:
    """The generated ``docs/ENVIRONMENT.md`` content."""
    lines = [
        "# Environment variables",
        "",
        "<!-- Generated from repro.runtime.env.ENV_CATALOG by",
        "     `python -m repro.cli lint-static --write-env-docs`.",
        "     Do not edit by hand: the env-discipline lint rule and",
        "     tests/test_analysis.py keep this file in sync. -->",
        "",
        "Every `REPRO_*` knob is declared in",
        "`repro.runtime.env.ENV_CATALOG` and read only through that",
        "module's typed accessors; raw `os.environ` reads elsewhere are",
        "lint errors (`make lint-static`, rule `env-discipline`).",
        "",
        "| Variable | Type | Default | Consumer | Description |",
        "|---|---|---|---|---|",
    ]
    for name in declared_variables():
        var = ENV_CATALOG[name]
        description = " ".join(var.description.split())
        lines.append(
            f"| `{var.name}` | {var.kind} | {var.default} | "
            f"`{var.consumer}` | {description} |"
        )
    lines.append("")
    return "\n".join(lines)
