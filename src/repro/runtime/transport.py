"""Shared-memory activation transport for the process-pool schedulers.

Shipping a shard to a worker used to pickle the activation slice into
the pool's IPC pipe — serialize, copy through a pipe buffer,
deserialize — which the PR 3 benchmarks showed is the dominant per-shard
overhead once the sampling kernels are fast. This module replaces the
pickled payload with :mod:`multiprocessing.shared_memory` ring buffers:

* the parent :meth:`ActivationRing.publish`\\ es one wave's activation
  buffer into a reusable shared-memory slot and hands workers tiny
  :class:`ShmTicket`\\ s (segment name + dtype + shape + row range);
* each worker :func:`load`\\ s its ticket — attach (cached per segment),
  view, copy out its rows — so the bytes cross processes through one
  mmap instead of a pickle round-trip;
* slots are leased: the parent releases a lease only after every future
  reading from it has resolved, then the slot is reused by the next
  wave (a bounded ring, not an allocation per request).

The transport is an optimization, never a semantics change: tickets
carry no randomness, so shm and pickle transports produce bit-identical
results. When shared memory is unavailable (exotic platforms, exhausted
/dev/shm) the scheduler falls back to the pickled path — construction
failures raise :class:`TransportUnavailable` exactly once and the
scheduler flips itself to ``"pickle"``.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from multiprocessing import shared_memory
from typing import Dict, List, Optional, Tuple

import numpy as np

#: Smallest segment worth allocating — tiny waves round up so the ring
#: can absorb slightly larger follow-up waves without reallocating.
_MIN_SLOT_BYTES = 1 << 16


class TransportUnavailable(RuntimeError):
    """Shared-memory segments cannot be created on this host."""


@dataclass(frozen=True)
class ShmTicket:
    """A worker's claim check for shard activations: which segment,
    what array lives in it, and which row range belongs to the shard."""

    segment: str
    dtype: str
    shape: Tuple[int, ...]
    start: int
    stop: int


class Lease:
    """One published wave: the slot stays pinned until :meth:`release`.

    The parent releases only after every shard future that reads from
    the slot has resolved, so workers never observe a slot being
    rewritten mid-read.
    """

    def __init__(self, ring: "ActivationRing", slot: "_Slot", shape, dtype) -> None:
        self._ring = ring
        self._slot = slot
        self._shape = tuple(shape)
        self._dtype = str(dtype)
        self._released = False

    def ticket(self, start: int, stop: int) -> ShmTicket:
        return ShmTicket(
            segment=self._slot.shm.name,
            dtype=self._dtype,
            shape=self._shape,
            start=start,
            stop=stop,
        )

    def release(self) -> None:
        if not self._released:
            self._released = True
            self._ring._release(self._slot)


class _Slot:
    __slots__ = ("shm", "nbytes")

    def __init__(self, shm: shared_memory.SharedMemory) -> None:
        self.shm = shm
        self.nbytes = shm.size


class ActivationRing:
    """A bounded pool of reusable shared-memory slots (parent side).

    ``slots`` bounds how many waves may be in flight at once;
    :meth:`publish` blocks when the ring is full. Slots are sized
    lazily: a wave that outgrows every free slot replaces the smallest
    one (old segments are unlinked — names are never reused, so a
    worker's cached attachment can never alias a new wave's data).
    """

    def __init__(self, slots: int = 4) -> None:
        if slots < 1:
            raise ValueError(f"slots must be >= 1, got {slots}")
        self.slots = int(slots)
        self._free: List[_Slot] = []
        self._active: int = 0
        self._cond = threading.Condition()
        self._closed = False

    # ------------------------------------------------------------------
    def publish(self, array: np.ndarray) -> Lease:
        """Copy ``array`` into a slot; returns the :class:`Lease`."""
        a = np.ascontiguousarray(array)
        nbytes = max(int(a.nbytes), 1)
        with self._cond:
            if self._closed:
                raise TransportUnavailable("activation ring is closed")
            while self._active >= self.slots:
                self._cond.wait()
            slot = self._take_slot(nbytes)
            self._active += 1
        buf = np.ndarray(a.shape, dtype=a.dtype, buffer=slot.shm.buf)
        buf[...] = a
        del buf  # drop the exported view before anyone can close the mmap
        return Lease(self, slot, a.shape, a.dtype)

    def _take_slot(self, nbytes: int) -> _Slot:
        """A free slot of capacity >= nbytes (smallest fit), else a
        fresh segment (evicting the smallest free slot when at bound)."""
        fits = [s for s in self._free if s.nbytes >= nbytes]
        if fits:
            slot = min(fits, key=lambda s: s.nbytes)
            self._free.remove(slot)
            return slot
        if self._free and self._active + len(self._free) >= self.slots:
            victim = min(self._free, key=lambda s: s.nbytes)
            self._free.remove(victim)
            _destroy(victim.shm)
        try:
            shm = shared_memory.SharedMemory(
                create=True, size=max(nbytes, _MIN_SLOT_BYTES)
            )
        except OSError as exc:  # pragma: no cover - host-dependent
            raise TransportUnavailable(f"cannot create shared memory: {exc}")
        return _Slot(shm)

    def _release(self, slot: _Slot) -> None:
        with self._cond:
            self._active -= 1
            if self._closed:
                _destroy(slot.shm)
            else:
                self._free.append(slot)
            self._cond.notify()

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Unlink every free segment; outstanding leases are destroyed
        on release. Idempotent."""
        with self._cond:
            self._closed = True
            free, self._free = self._free, []
        for slot in free:
            _destroy(slot.shm)

    def __enter__(self) -> "ActivationRing":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def _destroy(shm: shared_memory.SharedMemory) -> None:
    try:
        shm.close()
        shm.unlink()
    except (OSError, FileNotFoundError):  # pragma: no cover - already gone
        pass


# ----------------------------------------------------------------------
# Worker side: attach, view, copy out. Attachments are cached per
# segment name — a ring reuses its slots wave after wave, so each worker
# pays the shm_open + mmap once per slot, not once per shard.
# ----------------------------------------------------------------------
_ATTACH_CACHE: Dict[str, shared_memory.SharedMemory] = {}
_ATTACH_ORDER: List[str] = []
_ATTACH_CACHE_MAX = 8


def _attach(name: str) -> shared_memory.SharedMemory:
    shm = _ATTACH_CACHE.get(name)
    if shm is not None:
        return shm
    shm = shared_memory.SharedMemory(name=name)
    # Fork-started workers share the parent's resource_tracker process,
    # where the attach-side registration (Python < 3.13 registers on
    # attach) is an idempotent set-add — the parent's unlink clears it
    # exactly once. Unregistering here would clobber the parent's own
    # registration in that shared tracker, so we deliberately leave the
    # registration alone.
    _ATTACH_CACHE[name] = shm
    _ATTACH_ORDER.append(name)
    while len(_ATTACH_ORDER) > _ATTACH_CACHE_MAX:
        stale_name = _ATTACH_ORDER.pop(0)
        stale_shm = _ATTACH_CACHE.pop(stale_name)
        try:
            stale_shm.close()
        except BufferError:  # pragma: no cover - view still exported
            _ATTACH_CACHE[stale_name] = stale_shm
            _ATTACH_ORDER.insert(0, stale_name)
            break
    return shm


def load(ticket: ShmTicket) -> np.ndarray:
    """Materialize a ticket's row range as an owned ndarray copy."""
    shm = _attach(ticket.segment)
    view = np.ndarray(
        ticket.shape, dtype=np.dtype(ticket.dtype), buffer=shm.buf
    )
    return np.array(view[ticket.start : ticket.stop])
