"""Shared-memory activation transport for the process-pool schedulers.

Shipping a shard to a worker used to pickle the activation slice into
the pool's IPC pipe — serialize, copy through a pipe buffer,
deserialize — which the PR 3 benchmarks showed is the dominant per-shard
overhead once the sampling kernels are fast. This module replaces the
pickled payload with :mod:`multiprocessing.shared_memory` ring buffers:

* the parent :meth:`ActivationRing.publish`\\ es one wave's activation
  buffer into a reusable shared-memory slot and hands workers tiny
  :class:`ShmTicket`\\ s (segment name + dtype + shape + row range);
* each worker :func:`load`\\ s its ticket — attach (cached per segment),
  view, copy out its rows — so the bytes cross processes through one
  mmap instead of a pickle round-trip;
* slots are leased: the parent releases a lease only after every future
  reading from it has resolved, then the slot is reused by the next
  wave (a bounded ring, not an allocation per request).

The transport is an optimization, never a semantics change: tickets
carry no randomness, so shm and pickle transports produce bit-identical
results. When shared memory is unavailable (exotic platforms, exhausted
/dev/shm) the scheduler falls back to the pickled path — construction
failures raise :class:`TransportUnavailable` exactly once and the
scheduler flips itself to ``"pickle"``.

Fault tolerance: a wave that *fails* still flows through the
scheduler's ``finally`` and releases its lease, and two further guards
keep a crashed or wedged consumer from pinning the ring forever:

* **lease timeout** — a lease older than ``lease_timeout_s`` is
  *reclaimed* while another publisher waits: its segment is abandoned
  (unlinked, never reused — a straggling worker's existing mapping
  stays valid, it simply reads data nobody wants anymore) and the slot
  count is freed. A late :meth:`Lease.release` on a reclaimed lease is
  a no-op.
* **publish timeout** — ``publish`` raises
  :class:`TransportUnavailable` instead of blocking forever when no
  slot frees up in ``publish_timeout_s``, letting the scheduler flip
  to the pickle path and carry on.

:meth:`Lease.abandon` is the deadline-recovery hook: when a scheduler
gives up on a wave whose workers may still be reading, abandoning
destroys the segment instead of recycling it, so a retry can never
rewrite memory a straggler is scanning.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from multiprocessing import shared_memory
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.runtime import faults

#: Smallest segment worth allocating — tiny waves round up so the ring
#: can absorb slightly larger follow-up waves without reallocating.
_MIN_SLOT_BYTES = 1 << 16

#: Default ceiling on how long a lease may stay unreleased before a
#: waiting publisher may reclaim its slot (a dead consumer's lease must
#: never wedge the ring permanently).
DEFAULT_LEASE_TIMEOUT_S = 60.0


class TransportUnavailable(RuntimeError):
    """Shared-memory segments cannot be created (or leased) on this
    host right now."""


@dataclass(frozen=True)
class ShmTicket:
    """A worker's claim check for shard activations: which segment,
    what array lives in it, and which row range belongs to the shard."""

    segment: str
    dtype: str
    shape: Tuple[int, ...]
    start: int
    stop: int


class Lease:
    """One published wave: the slot stays pinned until :meth:`release`.

    The parent releases only after every shard future that reads from
    the slot has resolved, so workers never observe a slot being
    rewritten mid-read. :meth:`abandon` is the failure path: the
    segment is destroyed (not recycled), so a straggler still holding a
    mapping reads stale-but-stable bytes instead of a retry's fresh
    data. Both are idempotent, including after the ring reclaimed an
    expired lease.
    """

    def __init__(self, ring: "ActivationRing", slot: "_Slot", shape, dtype) -> None:
        self._ring = ring
        self._slot = slot
        self._shape = tuple(shape)
        self._dtype = str(dtype)
        self.created_at = time.monotonic()

    def ticket(self, start: int, stop: int) -> ShmTicket:
        return ShmTicket(
            segment=self._slot.shm.name,
            dtype=self._dtype,
            shape=self._shape,
            start=start,
            stop=stop,
        )

    def release(self) -> None:
        self._ring._settle(self, destroy=False)

    def abandon(self) -> None:
        """Release the slot *without* recycling it (workers may still
        be reading): the segment is unlinked and the capacity freed."""
        self._ring._settle(self, destroy=True)


class _Slot:
    __slots__ = ("shm", "nbytes")

    def __init__(self, shm: shared_memory.SharedMemory) -> None:
        self.shm = shm
        self.nbytes = shm.size


class ActivationRing:
    """A bounded pool of reusable shared-memory slots (parent side).

    ``slots`` bounds how many waves may be in flight at once;
    :meth:`publish` blocks when the ring is full — up to
    ``publish_timeout_s`` (then :class:`TransportUnavailable`), while
    reclaiming leases older than ``lease_timeout_s`` so a crashed
    consumer can never wedge the ring. Slots are sized lazily: a wave
    that outgrows every free slot replaces the smallest one (old
    segments are unlinked — names are never reused, so a worker's
    cached attachment can never alias a new wave's data).
    """

    def __init__(
        self,
        slots: int = 4,
        *,
        lease_timeout_s: Optional[float] = DEFAULT_LEASE_TIMEOUT_S,
        publish_timeout_s: Optional[float] = None,
    ) -> None:
        if slots < 1:
            raise ValueError(f"slots must be >= 1, got {slots}")
        if lease_timeout_s is not None and lease_timeout_s <= 0:
            raise ValueError(
                f"lease_timeout_s must be > 0 or None, got {lease_timeout_s}"
            )
        if publish_timeout_s is not None and publish_timeout_s <= 0:
            raise ValueError(
                f"publish_timeout_s must be > 0 or None, got {publish_timeout_s}"
            )
        self.slots = int(slots)
        self.lease_timeout_s = lease_timeout_s
        self.publish_timeout_s = publish_timeout_s
        self._free: List[_Slot] = []
        self._leases: Dict[int, Lease] = {}  # id(lease) -> lease
        self._cond = threading.Condition()
        self._closed = False
        self.reclaimed = 0  # expired leases forcibly reclaimed (telemetry)

    # ------------------------------------------------------------------
    def publish(self, array: np.ndarray) -> Lease:
        """Copy ``array`` into a slot; returns the :class:`Lease`."""
        a = np.ascontiguousarray(array)
        nbytes = max(int(a.nbytes), 1)
        faults.fault_point("transport.publish", nbytes=nbytes)
        deadline = (
            None
            if self.publish_timeout_s is None
            else time.monotonic() + self.publish_timeout_s
        )
        with self._cond:
            if self._closed:
                raise TransportUnavailable("activation ring is closed")
            while len(self._leases) >= self.slots:
                self._reclaim_expired_locked()
                if len(self._leases) < self.slots:
                    break
                wait = self._next_wakeup_locked(deadline)
                if wait is not None and wait <= 0:
                    raise TransportUnavailable(
                        f"no activation slot freed within "
                        f"{self.publish_timeout_s}s ({self.slots} leases "
                        f"outstanding)"
                    )
                self._cond.wait(timeout=wait)
                if self._closed:
                    raise TransportUnavailable("activation ring is closed")
            slot = self._take_slot(nbytes)
            lease = Lease(self, slot, a.shape, a.dtype)
            self._leases[id(lease)] = lease
        buf = np.ndarray(a.shape, dtype=a.dtype, buffer=slot.shm.buf)
        buf[...] = a
        del buf  # drop the exported view before anyone can close the mmap
        return lease

    def _next_wakeup_locked(self, deadline: Optional[float]) -> Optional[float]:
        """How long publish may sleep before something actionable: the
        publish deadline, the next lease expiry, or (neither) forever.
        Returns <= 0 when the publish deadline has already passed."""
        now = time.monotonic()
        candidates = []
        if deadline is not None:
            candidates.append(deadline - now)
        if self.lease_timeout_s is not None and self._leases:
            oldest = min(l.created_at for l in self._leases.values())
            candidates.append(max(oldest + self.lease_timeout_s - now, 0.001))
        return min(candidates) if candidates else None

    def _reclaim_expired_locked(self) -> None:
        if self.lease_timeout_s is None:
            return
        cutoff = time.monotonic() - self.lease_timeout_s
        expired = [
            lease for lease in self._leases.values() if lease.created_at < cutoff
        ]
        for lease in expired:
            del self._leases[id(lease)]
            _destroy(lease._slot.shm)
            self.reclaimed += 1

    def _take_slot(self, nbytes: int) -> _Slot:
        """A free slot of capacity >= nbytes (smallest fit), else a
        fresh segment (evicting the smallest free slot when at bound)."""
        fits = [s for s in self._free if s.nbytes >= nbytes]
        if fits:
            slot = min(fits, key=lambda s: s.nbytes)
            self._free.remove(slot)
            return slot
        if self._free and len(self._leases) + len(self._free) >= self.slots:
            victim = min(self._free, key=lambda s: s.nbytes)
            self._free.remove(victim)
            _destroy(victim.shm)
        try:
            shm = shared_memory.SharedMemory(
                create=True, size=max(nbytes, _MIN_SLOT_BYTES)
            )
        except OSError as exc:  # pragma: no cover - host-dependent
            raise TransportUnavailable(
                f"cannot create shared memory: {exc}"
            ) from exc
        return _Slot(shm)

    def _settle(self, lease: Lease, *, destroy: bool) -> None:
        """Release or abandon one lease (no-op if already settled or
        reclaimed by the expiry sweep)."""
        with self._cond:
            if self._leases.pop(id(lease), None) is None:
                return
            if destroy or self._closed:
                _destroy(lease._slot.shm)
            else:
                self._free.append(lease._slot)
            self._cond.notify()

    # ------------------------------------------------------------------
    @property
    def outstanding(self) -> int:
        """Leases currently pinned (telemetry / tests)."""
        with self._cond:
            return len(self._leases)

    def close(self) -> None:
        """Unlink every free segment; outstanding leases are destroyed
        on release. Idempotent."""
        with self._cond:
            self._closed = True
            free, self._free = self._free, []
            self._cond.notify_all()
        for slot in free:
            _destroy(slot.shm)

    def __enter__(self) -> "ActivationRing":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def _destroy(shm: shared_memory.SharedMemory) -> None:
    try:
        shm.close()
        shm.unlink()
    except (OSError, FileNotFoundError):  # pragma: no cover - already gone
        pass


# ----------------------------------------------------------------------
# Worker side: attach, view, copy out. Attachments are cached per
# segment name — a ring reuses its slots wave after wave, so each worker
# pays the shm_open + mmap once per slot, not once per shard.
# ----------------------------------------------------------------------
_ATTACH_CACHE: Dict[str, shared_memory.SharedMemory] = {}
_ATTACH_ORDER: List[str] = []
_ATTACH_CACHE_MAX = 8


def _attach(name: str) -> shared_memory.SharedMemory:
    faults.fault_point("transport.attach", segment=name)
    shm = _ATTACH_CACHE.get(name)
    if shm is not None:
        return shm
    shm = shared_memory.SharedMemory(name=name)
    # Fork-started workers share the parent's resource_tracker process,
    # where the attach-side registration (Python < 3.13 registers on
    # attach) is an idempotent set-add — the parent's unlink clears it
    # exactly once. Unregistering here would clobber the parent's own
    # registration in that shared tracker, so we deliberately leave the
    # registration alone.
    _ATTACH_CACHE[name] = shm
    _ATTACH_ORDER.append(name)
    while len(_ATTACH_ORDER) > _ATTACH_CACHE_MAX:
        stale_name = _ATTACH_ORDER.pop(0)
        stale_shm = _ATTACH_CACHE.pop(stale_name)
        try:
            stale_shm.close()
        except BufferError:  # pragma: no cover - view still exported
            _ATTACH_CACHE[stale_name] = stale_shm
            _ATTACH_ORDER.insert(0, stale_name)
            break
    return shm


def load(ticket: ShmTicket) -> np.ndarray:
    """Materialize a ticket's row range as an owned ndarray copy."""
    shm = _attach(ticket.segment)
    view = np.ndarray(
        ticket.shape, dtype=np.dtype(ticket.dtype), buffer=shm.buf
    )
    return np.array(view[ticket.start : ticket.stop])
