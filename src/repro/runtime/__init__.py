"""``repro.runtime`` — execution planning, scheduling, transport, serving.

The runtime subsystem sits between the :class:`~repro.api.Engine`
facade and the layer-level execution backends
(:mod:`repro.api.backends`). It owns the full request lifecycle::

    request -> plan -> schedule -> transport -> results

* :mod:`repro.runtime.plan` — :func:`plan_shards` /
  :class:`ShardPlan` (row ranges + per-shard child seeds, the
  reproducibility contract), :func:`compile_plan` /
  :class:`ExecutionPlan` (the explicit (shard x stage x tile) task DAG
  with window-count cost estimates), and the shared stage pipeline
  :func:`run_stages` + :func:`seed_shard` every execution path runs
  through.
* :mod:`repro.runtime.scheduler` — pluggable string-keyed schedulers:
  ``"serial"``, ``"shard-parallel"`` (process pool), and
  ``"tile-parallel"`` (concurrent column tiles). Extend via
  :func:`register_scheduler`.
* :mod:`repro.runtime.transport` — shared-memory activation ring
  buffers that replace pickled ndarray shipping to pool workers.
* :mod:`repro.runtime.daemon` — :class:`ServingDaemon`, the long-lived
  queued serving loop with deadline-based batch coalescing (coalesced
  waves stay bit-identical to uncoalesced execution for seeded
  daemons).
* :mod:`repro.runtime.faults` — the deterministic fault-injection
  harness (:class:`FaultPlan` / :func:`fault_point`), armed via
  :func:`install_fault_plan`, :class:`fault_injection`, or the
  ``REPRO_FAULT_PLAN`` environment variable.
* :mod:`repro.runtime.recovery` — failure classification (retryable
  infrastructure vs fatal payload), :class:`RetryPolicy` with
  exponential backoff and per-request deadlines, and the
  :func:`run_with_recovery` loop whose outcomes surface as
  :class:`RecoveryLog`.
* :mod:`repro.runtime.env` — the typed accessor boundary for every
  ``REPRO_*`` environment knob, declared in :data:`ENV_CATALOG` (the
  source of the generated ``docs/ENVIRONMENT.md``) and enforced by the
  ``env-discipline`` rule of :mod:`repro.analysis`.

The :mod:`repro.api` surface (Engine / Session / Serving /
StochasticParallelBackend) is a facade over this package; existing
code keeps working unchanged.
"""

from repro.runtime.costmodel import (
    ADAPTIVE_MODES,
    AdaptiveChoice,
    CostCoefficients,
    CostModel,
    StageDecision,
    calibrate,
    candidate_modes,
    load_cost_model,
)
from repro.runtime.daemon import DaemonStats, ServingDaemon
from repro.runtime.env import (
    ENV_CATALOG,
    EnvError,
    EnvVar,
    UndeclaredEnvVar,
    declared_variables,
    env_bool,
    env_float,
    env_int,
    env_path,
    env_str,
)
from repro.runtime.faults import (
    KNOWN_SITES,
    FaultInjected,
    FaultPlan,
    FaultSpec,
    fault_injection,
    fault_point,
    install_fault_plan,
)
from repro.runtime.plan import (
    ExecutionPlan,
    Shard,
    ShardPlan,
    StageTask,
    compile_plan,
    concat_plans,
    plan_shards,
    run_stages,
    seed_shard,
)
from repro.runtime.recovery import (
    DeadlineExceeded,
    PoisonedPayload,
    QueueFull,
    RecoveryLog,
    RequestError,
    RetryPolicy,
    run_with_recovery,
)
from repro.runtime.scheduler import (
    AdaptiveScheduler,
    SerialScheduler,
    ShardParallelScheduler,
    TileParallelScheduler,
    available_schedulers,
    register_scheduler,
    resolve_scheduler,
)
from repro.runtime.transport import ActivationRing, ShmTicket, TransportUnavailable

__all__ = [
    "ExecutionPlan",
    "StageTask",
    "Shard",
    "ShardPlan",
    "compile_plan",
    "concat_plans",
    "plan_shards",
    "run_stages",
    "seed_shard",
    "AdaptiveScheduler",
    "SerialScheduler",
    "ShardParallelScheduler",
    "TileParallelScheduler",
    "available_schedulers",
    "register_scheduler",
    "resolve_scheduler",
    "ADAPTIVE_MODES",
    "AdaptiveChoice",
    "CostCoefficients",
    "CostModel",
    "StageDecision",
    "calibrate",
    "candidate_modes",
    "load_cost_model",
    "ActivationRing",
    "ShmTicket",
    "TransportUnavailable",
    "ServingDaemon",
    "DaemonStats",
    "KNOWN_SITES",
    "FaultInjected",
    "FaultPlan",
    "FaultSpec",
    "fault_injection",
    "fault_point",
    "install_fault_plan",
    "ENV_CATALOG",
    "EnvError",
    "EnvVar",
    "UndeclaredEnvVar",
    "declared_variables",
    "env_bool",
    "env_float",
    "env_int",
    "env_path",
    "env_str",
    "DeadlineExceeded",
    "PoisonedPayload",
    "QueueFull",
    "RecoveryLog",
    "RequestError",
    "RetryPolicy",
    "run_with_recovery",
]
