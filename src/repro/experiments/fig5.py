"""Fig. 5 — crossbar current attenuation vs array size.

Measures the inductive-ladder merging circuit at the paper's crossbar
sizes and fits the power law ``I1(Cs) = A * Cs^-B`` (Eq. 2), returning
both series plus the fit quality.
"""

from __future__ import annotations

from typing import Dict, Iterable, List

import numpy as np

from repro.device.attenuation import InductiveLadder, fit_attenuation


def attenuation_curve(
    sizes: Iterable[int] = (4, 8, 16, 18, 36, 72, 144),
    noise_fraction: float = 0.02,
    seed: int = 0,
) -> Dict:
    """Measured vs fitted output current per crossbar size.

    Returns ``{"points": [...], "amplitude_ua": A, "exponent": B,
    "max_relative_fit_error": float}``.
    """
    ladder = InductiveLadder()
    xs, measured = ladder.measure(sizes, noise_fraction=noise_fraction, seed=seed)
    model = fit_attenuation(xs, measured)
    fitted = model.unit_current_ua(xs)
    rel_err = np.abs(fitted - measured) / measured
    points: List[Dict[str, float]] = [
        {
            "crossbar_size": int(c),
            "measured_ua": float(m),
            "fitted_ua": float(f),
        }
        for c, m, f in zip(xs, measured, fitted)
    ]
    return {
        "points": points,
        "amplitude_ua": model.amplitude_ua,
        "exponent": model.exponent,
        "max_relative_fit_error": float(rel_err.max()),
    }
