"""Extension study: operating temperature vs accuracy.

The paper fixes 4.2 K (liquid helium) and notes (Sec. 4.2, citing [73])
that the gray zone grows with temperature in the thermal regime and
saturates at a quantum floor as T -> 0. This extension sweeps the
operating point: the device model converts temperature to a gray-zone
width (``repro.device.josephson.gray_zone_width``) and the deployed
accuracy is measured on the hardware executor — quantifying how much
accuracy a warmer (cheaper-to-cool) operating point costs.
"""

from __future__ import annotations

from typing import Dict, Iterable, List

from repro.api import Engine
from repro.device.josephson import gray_zone_width
from repro.experiments.common import trained_mlp, training_gray_zone
from repro.hardware.config import HardwareConfig


def temperature_sweep(
    temperatures_k: Iterable[float] = (0.1, 1.0, 4.2, 10.0, 20.0, 40.0),
    crossbar_size: int = 16,
    window_bits: int = 8,
    gray_zone_at_4p2k_ua: float = None,
    epochs: int = 15,
    n_eval: int = 200,
    seed: int = 0,
) -> Dict:
    """Accuracy and gray-zone width across operating temperatures.

    The 4.2 K gray zone defaults to the co-optimized dithering point
    (``dVin = 8``); other temperatures scale it by the thermal law.
    Returns ``{"rows": [{"temperature_k", "gray_zone_ua", "accuracy"}],
    "reference_accuracy": float}``.
    """
    if gray_zone_at_4p2k_ua is None:
        gray_zone_at_4p2k_ua = training_gray_zone(crossbar_size, dvin_target=8.0)
    train_hw = HardwareConfig(
        crossbar_size=crossbar_size,
        gray_zone_ua=training_gray_zone(crossbar_size),
        window_bits=window_bits,
    )
    model, _, test, software_acc = trained_mlp(train_hw, epochs=epochs, seed=seed)
    images, labels = test.images[:n_eval], test.labels[:n_eval]

    rows: List[Dict[str, float]] = []
    for temperature in temperatures_k:
        zone = gray_zone_width(
            temperature, width_at_4p2k_ua=gray_zone_at_4p2k_ua
        )
        deploy = train_hw.with_(gray_zone_ua=zone, temperature_k=temperature)
        accuracy = Engine.from_model(model, deploy).evaluate(images, labels)
        rows.append(
            {
                "temperature_k": float(temperature),
                "gray_zone_ua": float(zone),
                "accuracy": float(accuracy),
            }
        )
    return {"rows": rows, "reference_accuracy": software_acc}
