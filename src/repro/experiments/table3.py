"""Table 3 — MNIST MLP: ours vs SyncBNN / RSFQ / ERSFQ / SC-AQFP.

Ours: train the MLP, deploy on the hardware executor, measure accuracy,
and compute TOPS/W (with and without the 400x cooling charge) from the
cost model over the compiled workloads. Baselines are the published
numbers. The shape targets: 2-4 orders of magnitude over the CMOS /
RSFQ / ERSFQ rows and >100x over SC-AQFP at similar accuracy.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.api import Engine
from repro.baselines.specs import MNIST_BASELINES, PAPER_SUPERBNN_MNIST
from repro.experiments.common import trained_mlp, training_gray_zone
from repro.hardware.config import HardwareConfig
from repro.hardware.cost import AcceleratorCostModel


def mnist_comparison(
    crossbar_size: int = 72,
    gray_zone_ua: Optional[float] = None,
    window_bits: int = 16,
    epochs: int = 15,
    n_eval: int = 300,
    seed: int = 0,
) -> Dict:
    """Our MNIST row plus published baselines and the paper's own row."""
    if gray_zone_ua is None:
        gray_zone_ua = training_gray_zone(crossbar_size)
    hardware = HardwareConfig(
        crossbar_size=crossbar_size,
        gray_zone_ua=gray_zone_ua,
        window_bits=window_bits,
    )
    model, train, test, software_acc = trained_mlp(hardware, epochs=epochs, seed=seed)
    # Deploy at the co-optimized (dithering-regime) gray zone.
    deploy = hardware.with_(
        gray_zone_ua=training_gray_zone(crossbar_size, dvin_target=8.0)
    )
    engine = Engine.from_model(model, deploy)
    accuracy = engine.evaluate(
        test.images[:n_eval], test.labels[:n_eval], backend="stochastic"
    )
    cost = AcceleratorCostModel(hardware, engine.workloads(train.image_shape))

    ours = {
        "design": "SupeRBNN (MLP)",
        "accuracy_pct": accuracy * 100.0,
        "software_accuracy_pct": software_acc * 100.0,
        "tops_per_w": cost.energy_efficiency_tops_per_w(),
        "tops_per_w_cooled": cost.energy_efficiency_tops_per_w(with_cooling=True),
    }
    baselines: List[Dict] = [
        {
            "design": spec.name,
            "accuracy_pct": spec.accuracy,
            "tops_per_w": spec.tops_per_w,
            "tops_per_w_cooled": spec.tops_per_w_cooled,
        }
        for spec in MNIST_BASELINES
    ]
    return {"ours": ours, "baselines": baselines, "paper_row": dict(PAPER_SUPERBNN_MNIST)}
