"""Fig. 10 — model accuracy vs SC bit-stream length.

The paper sweeps the observation-window length L for several crossbar
sizes (dIin = 2.4 uA) and finds accuracy rises then saturates around
L = 16-32. We deploy a trained reference model on the hardware executor
at each (Cs, L) and measure top-1 accuracy. The gray zone defaults to
the dithering regime (where the SC window is informative — see
DESIGN.md); ``gray_zone_ua=2.4`` reproduces the paper's setting.
"""

from __future__ import annotations

from typing import Dict, Iterable, List

from repro.api import Engine
from repro.core.coopt import saturation_length
from repro.experiments.common import trained_mlp, training_gray_zone
from repro.hardware.config import HardwareConfig


def bitstream_length_sweep(
    crossbar_sizes: Iterable[int] = (8, 16, 36, 72),
    lengths: Iterable[int] = (1, 2, 4, 8, 16, 32, 64),
    gray_zone_ua: float = 10.0,
    epochs: int = 15,
    n_eval: int = 200,
    saturation_tolerance: float = 0.03,
    seed: int = 0,
    n_repeats: int = 1,
) -> Dict:
    """Accuracy vs window length per crossbar size.

    Returns ``{"series": {Cs: [{"window_bits", "accuracy"}...]},
    "saturation": {Cs: L_sat}, "software_accuracy": {...}}``.

    ``n_repeats`` averages that many stochastic evaluations per point:
    a single pass over a few hundred images has a sampling sigma of
    ~0.03, which is the same order as the saturation tolerance.
    """
    lengths = list(lengths)
    series: Dict[int, List[Dict[str, float]]] = {}
    saturation: Dict[int, int] = {}
    software: Dict[int, float] = {}
    for cs in crossbar_sizes:
        # Train at a fixed normalized noise level; deploy at the swept
        # gray zone (see experiments.common.training_gray_zone).
        train_hw = HardwareConfig(
            crossbar_size=cs,
            gray_zone_ua=training_gray_zone(cs),
            window_bits=16,
        )
        hardware = train_hw.with_(gray_zone_ua=gray_zone_ua)
        model, _, test, sw_acc = trained_mlp(train_hw, epochs=epochs, seed=seed)
        software[cs] = sw_acc
        images = test.images[:n_eval]
        labels = test.labels[:n_eval]
        sweep = []
        for length in lengths:
            engine = Engine.from_model(model, hardware.with_(window_bits=length))
            acc = sum(
                engine.evaluate(images, labels, backend="stochastic")
                for _ in range(n_repeats)
            ) / n_repeats
            sweep.append({"window_bits": length, "accuracy": acc})
        series[cs] = sweep
        saturation[cs] = saturation_length(sweep, tolerance=saturation_tolerance)
    return {
        "series": series,
        "saturation": saturation,
        "software_accuracy": software,
        "gray_zone_ua": gray_zone_ua,
    }
