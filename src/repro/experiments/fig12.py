"""Fig. 12 — energy efficiency vs clock frequency, AQFP vs (Cryo-)CMOS.

Builds the whole figure dataset: our accelerator's TOPS/W across
0.1-10 GHz (adiabatic scaling), room-temperature CMOS points, and their
77 K Cryo-CMOS counterparts with and without cooling. The shape targets:
AQFP sits ~4 orders above Cryo-CMOS device-only and 2-3 orders above it
once both coolers are charged.
"""

from __future__ import annotations

from typing import Dict, Iterable, List

from repro.api import Engine
from repro.baselines.cryo import frequency_sweep
from repro.experiments.common import trained_mlp, training_gray_zone
from repro.hardware.config import HardwareConfig


def efficiency_frequency_sweep(
    frequencies_ghz: Iterable[float] = (0.1, 0.2, 0.5, 1.0, 2.0, 5.0, 10.0),
    crossbar_size: int = 72,
    window_bits: int = 16,
    epochs: int = 10,
    seed: int = 0,
) -> Dict:
    """Fig. 12 rows plus the gap statistics.

    Returns ``{"rows": [...], "gap_device_orders": float,
    "gap_cooled_orders": float}`` where the gaps compare AQFP to the best
    Cryo-CMOS series at 1 GHz, in orders of magnitude.
    """
    import math

    hardware = HardwareConfig(
        crossbar_size=crossbar_size,
        gray_zone_ua=training_gray_zone(crossbar_size),
        window_bits=window_bits,
    )
    model, train, _, _ = trained_mlp(hardware, epochs=epochs, seed=seed)
    engine = Engine.from_model(model, hardware)
    cost = engine.cost_model(train.image_shape)
    ours_at_5ghz = cost.energy_efficiency_tops_per_w()

    rows = frequency_sweep(ours_at_5ghz, frequencies_ghz)
    at_1ghz = next(r for r in rows if abs(r["frequency_ghz"] - 1.0) < 1e-9)
    best_cryo_device = max(
        v for k, v in at_1ghz.items() if k.startswith("cryo_") and not k.endswith("_cooled")
    )
    best_cryo_cooled = max(
        v for k, v in at_1ghz.items() if k.startswith("cryo_") and k.endswith("_cooled")
    )
    return {
        "rows": rows,
        "ours_at_5ghz_tops_per_w": ours_at_5ghz,
        "gap_device_orders": math.log10(at_1ghz["aqfp"] / best_cryo_device),
        "gap_cooled_orders": math.log10(at_1ghz["aqfp_cooled"] / best_cryo_cooled),
    }
