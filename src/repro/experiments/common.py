"""Shared infrastructure for the experiment harnesses.

Provides deterministic synthetic datasets and memoized reference model
training so that several experiments (and benchmark repetitions) can
reuse one trained model per configuration within a process.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.core.trainer import Trainer, TrainingConfig
from repro.data.loaders import DataLoader
from repro.data.synthetic import Dataset, make_cifar_like, make_mnist_like
from repro.hardware.config import HardwareConfig
from repro.models.mlp import Mlp
from repro.models.vgg import VggSmall

_MODEL_CACHE: Dict[Tuple, Tuple] = {}


def training_gray_zone(
    crossbar_size: int,
    dvin_target: float = 1.0,
    attenuation=None,
) -> float:
    """Gray-zone current giving a fixed *normalized* training noise.

    The randomized cells apply ``Pv`` with ``dVin(Cs) = dIin / I1(Cs)``
    to the normalized activation (Eq. 7). Because ``I1`` falls with
    crossbar size, a fixed ``dIin`` makes the training noise explode at
    large ``Cs`` and the model cannot learn. The experiments therefore
    train each size at ``dIin = dvin_target * I1(Cs)`` (constant noise in
    the activation domain) and sweep the *deployment* gray zone
    separately.
    """
    from repro.device.attenuation import AttenuationModel

    attenuation = attenuation or AttenuationModel()
    return float(dvin_target * attenuation.unit_current_ua(crossbar_size))


def mnist_datasets(n_samples: int = 1500, seed: int = 0) -> Tuple[Dataset, Dataset]:
    """Deterministic synthetic-MNIST train/test split."""
    return make_mnist_like(n_samples=n_samples, seed=seed).split(0.8, seed=1)


def cifar_datasets(n_samples: int = 1200, seed: int = 3) -> Tuple[Dataset, Dataset]:
    """Deterministic synthetic-CIFAR train/test split."""
    return make_cifar_like(n_samples=n_samples, seed=seed).split(0.8, seed=1)


def trained_mlp(
    hardware: HardwareConfig,
    epochs: int = 15,
    n_samples: int = 1500,
    hidden: Tuple[int, ...] = (64, 32),
    stochastic: bool = True,
    use_recu: bool = True,
    seed: int = 0,
):
    """Train (or fetch cached) the reference MLP for a hardware config.

    Returns ``(model, train_set, test_set, software_accuracy)``.
    """
    key = (
        "mlp",
        hardware.crossbar_size,
        round(hardware.gray_zone_ua, 6),
        epochs,
        n_samples,
        hidden,
        stochastic,
        use_recu,
        seed,
    )
    if key in _MODEL_CACHE:
        return _MODEL_CACHE[key]
    train, test = mnist_datasets(n_samples=n_samples, seed=seed)
    in_features = int(
        train.images.shape[1] * train.images.shape[2] * train.images.shape[3]
    )
    model = Mlp(
        in_features=in_features,
        hidden=hidden,
        hardware=hardware,
        stochastic=stochastic,
        seed=seed,
    )
    trainer = Trainer(
        model, TrainingConfig(epochs=epochs, warmup_epochs=3, use_recu=use_recu)
    )
    trainer.fit(DataLoader(train, 64, seed=2))
    accuracy = trainer.evaluate(DataLoader(test, 256, shuffle=False, seed=0))
    model.eval()
    result = (model, train, test, accuracy)
    _MODEL_CACHE[key] = result
    return result


def trained_vgg(
    hardware: HardwareConfig,
    epochs: int = 25,
    n_samples: int = 1200,
    width_multiplier: float = 0.125,
    stochastic: bool = True,
    use_recu: bool = True,
    seed: int = 0,
):
    """Train (or fetch cached) the reference VGG-small.

    Returns ``(model, train_set, test_set, software_accuracy)``.
    """
    key = (
        "vgg",
        hardware.crossbar_size,
        round(hardware.gray_zone_ua, 6),
        epochs,
        n_samples,
        width_multiplier,
        stochastic,
        use_recu,
        seed,
    )
    if key in _MODEL_CACHE:
        return _MODEL_CACHE[key]
    train, test = cifar_datasets(n_samples=n_samples)
    model = VggSmall(
        image_size=train.images.shape[2],
        width_multiplier=width_multiplier,
        hardware=hardware,
        stochastic=stochastic,
        seed=seed,
    )
    trainer = Trainer(
        model, TrainingConfig(epochs=epochs, warmup_epochs=3, use_recu=use_recu)
    )
    trainer.fit(DataLoader(train, 64, seed=2))
    accuracy = trainer.evaluate(DataLoader(test, 256, shuffle=False, seed=0))
    model.eval()
    result = (model, train, test, accuracy)
    _MODEL_CACHE[key] = result
    return result


def clear_model_cache() -> None:
    """Drop memoized models (tests use this for isolation)."""
    _MODEL_CACHE.clear()
