"""Experiment harnesses: one module per paper table/figure.

Each function returns the rows/series the paper reports (as plain
dictionaries) so the benchmark suite can print and check them, and
EXPERIMENTS.md can record paper-vs-measured values. Training runs are
scaled down (synthetic data, small models, few epochs) but execute the
complete method end to end.

| paper artifact | module |
|---|---|
| Fig. 4 (buffer probability)        | :mod:`repro.experiments.fig4` |
| Fig. 5 (current attenuation)       | :mod:`repro.experiments.fig5` |
| Table 1 (crossbar costs)           | :mod:`repro.experiments.table1` |
| Fig. 10 (bit-stream length)        | :mod:`repro.experiments.fig10` |
| Fig. 11 (gray-zone x size surface) | :mod:`repro.experiments.fig11` |
| Fig. 12 (efficiency vs frequency)  | :mod:`repro.experiments.fig12` |
| Table 2 (CIFAR-10 comparison)      | :mod:`repro.experiments.table2` |
| Table 3 (MNIST comparison)         | :mod:`repro.experiments.table3` |
| Sec. 4.4 (clocking optimization)   | :mod:`repro.experiments.clocking` |
| headline claims                    | :mod:`repro.experiments.headline` |
| design-choice ablations            | :mod:`repro.experiments.ablations` |
"""

from repro.experiments import common
from repro.experiments.fig4 import gray_zone_response
from repro.experiments.fig5 import attenuation_curve
from repro.experiments.table1 import crossbar_hardware_table
from repro.experiments.fig10 import bitstream_length_sweep
from repro.experiments.fig11 import accuracy_surface
from repro.experiments.fig12 import efficiency_frequency_sweep
from repro.experiments.table2 import cifar10_comparison
from repro.experiments.table3 import mnist_comparison
from repro.experiments.clocking import clocking_optimization_report
from repro.experiments.headline import headline_claims
from repro.experiments.temperature import temperature_sweep
from repro.experiments.ablations import (
    accumulation_ablation,
    randomized_training_ablation,
    recu_ablation,
)

__all__ = [
    "common",
    "gray_zone_response",
    "attenuation_curve",
    "crossbar_hardware_table",
    "bitstream_length_sweep",
    "accuracy_surface",
    "efficiency_frequency_sweep",
    "cifar10_comparison",
    "mnist_comparison",
    "clocking_optimization_report",
    "headline_claims",
    "randomized_training_ablation",
    "recu_ablation",
    "accumulation_ablation",
    "temperature_sweep",
]
