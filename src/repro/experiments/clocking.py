"""Sec. 4.4 — clocking scheme adjustment-based circuit optimization.

The paper reports >= 20.8% total-JJ reduction at 8-phase clocking and
27.3% at 16-phase for the computing circuits, plus a 20% memory-JJ
saving from a 3-phase buffer-chain-memory clock. We synthesize the SC
accumulation module's gate-level netlists (APC + comparator) and run the
same analysis.
"""

from __future__ import annotations

from typing import Dict, Iterable, List

from repro.circuits.apc import apc_output_width, build_apc_netlist
from repro.circuits.clocking import clocking_report
from repro.circuits.comparator import build_comparator_netlist
from repro.circuits.memory import BufferChainMemory

#: Paper-reported reductions, for comparison.
PAPER_REDUCTIONS = {8: 0.208, 16: 0.273}
PAPER_MEMORY_REDUCTION = 0.20


def clocking_optimization_report(
    apc_inputs: Iterable[int] = (8, 16, 32),
    phase_options: Iterable[int] = (4, 8, 16),
    memory_width: int = 64,
) -> Dict:
    """Clocking analysis over the accumulation-module circuits.

    Returns per-circuit reports plus the memory (BCM) 3-phase saving:
    ``{"circuits": {name: {phases: {...}}}, "memory_reduction": float,
    "paper": {...}}``.
    """
    phase_options = tuple(phase_options)
    circuits: Dict[str, Dict[int, Dict[str, float]]] = {}
    for n in apc_inputs:
        netlist = build_apc_netlist(n, approximate_layers=0)
        circuits[f"apc{n}"] = clocking_report(netlist, phase_options)
        cmp_netlist = build_comparator_netlist(apc_output_width(n))
        circuits[f"comparator{apc_output_width(n)}"] = clocking_report(
            cmp_netlist, phase_options
        )
    memory = BufferChainMemory(memory_width)
    return {
        "circuits": circuits,
        "memory_reduction": memory.jj_reduction_three_phase(),
        "paper": {
            "reductions": dict(PAPER_REDUCTIONS),
            "memory_reduction": PAPER_MEMORY_REDUCTION,
        },
    }


def best_reduction(report: Dict, phases: int) -> float:
    """Largest reduction achieved at ``phases`` across the circuits."""
    values: List[float] = [
        circuit[phases]["reduction_vs_4phase"]
        for circuit in report["circuits"].values()
        if phases in circuit
    ]
    if not values:
        raise ValueError(f"no circuits analysed at {phases} phases")
    return max(values)
