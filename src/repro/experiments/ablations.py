"""Design-choice ablations called out in DESIGN.md.

* randomized-aware training vs plain STE, evaluated on the stochastic
  hardware — the core claim of Sec. 5.1;
* ReCU clamp on vs off (Sec. 5.3);
* exact vs approximate APC counting in the SC accumulation module
  (Sec. 4.3).
"""

from __future__ import annotations

from typing import Dict, Iterable

import numpy as np

from repro.api import Engine
from repro.circuits.apc import ApproximateParallelCounter, build_apc_netlist
from repro.experiments.common import trained_mlp, training_gray_zone
from repro.hardware.config import HardwareConfig
from repro.utils.rng import new_rng


def randomized_training_ablation(
    crossbar_size: int = 16,
    gray_zone_ua: float = 10.0,
    window_bits: int = 8,
    epochs: int = 15,
    n_eval: int = 200,
    seed: int = 0,
) -> Dict:
    """Randomized-aware vs deterministic-STE training on noisy hardware.

    Returns software and hardware accuracies for both variants; the
    randomized-aware model should hold up better on hardware (smaller
    software -> hardware drop).
    """
    hardware = HardwareConfig(
        crossbar_size=crossbar_size,
        gray_zone_ua=gray_zone_ua,
        window_bits=window_bits,
    )
    results: Dict[str, Dict[str, float]] = {}
    for label, stochastic in (("randomized", True), ("deterministic", False)):
        model, _, test, sw_acc = trained_mlp(
            hardware, epochs=epochs, stochastic=stochastic, seed=seed
        )
        engine = Engine.from_model(model, hardware)
        hw_acc = engine.evaluate(
            test.images[:n_eval], test.labels[:n_eval], backend="stochastic"
        )
        results[label] = {
            "software_accuracy": sw_acc,
            "hardware_accuracy": hw_acc,
            "degradation": sw_acc - hw_acc,
        }
    return results


def recu_ablation(
    epochs: int = 15,
    seed: int = 0,
) -> Dict:
    """ReCU on vs off: test accuracy and weight-tail statistics."""
    hardware = HardwareConfig(crossbar_size=16, window_bits=16)
    results: Dict[str, Dict[str, float]] = {}
    for label, use_recu in (("recu", True), ("no_recu", False)):
        model, _, _, acc = trained_mlp(
            hardware, epochs=epochs, use_recu=use_recu, seed=seed
        )
        weights = np.concatenate(
            [
                p.data.ravel()
                for name, p in model.named_parameters()
                if name.endswith("weight") and p.data.ndim >= 2
            ]
        )
        scale = np.abs(weights).mean()
        results[label] = {
            "accuracy": acc,
            "weight_kurtosis_excess": float(
                ((weights / weights.std()) ** 4).mean() - 3.0
            ),
            "max_over_mean_abs": float(np.abs(weights).max() / max(scale, 1e-12)),
        }
    return results


def accumulation_ablation(
    n_inputs: int = 16,
    probabilities: Iterable[float] = (0.2, 0.5, 0.8),
    n_trials: int = 2000,
    seed: int = 0,
) -> Dict:
    """Exact vs approximate APC: counting error and JJ cost.

    The OR-only approximate layer undercounts coincident ones; the bench
    quantifies the bias against the JJ saving.
    """
    rng = new_rng(seed)
    exact = ApproximateParallelCounter(0)
    approx = ApproximateParallelCounter(1)
    rows = []
    for p in probabilities:
        bits = (rng.random((n_trials, n_inputs)) < p).astype(np.int64)
        true_counts = bits.sum(axis=1)
        approx_counts = approx.count(bits, axis=1)
        rows.append(
            {
                "probability": p,
                "mean_true": float(true_counts.mean()),
                "mean_approx": float(approx_counts.mean()),
                "mean_abs_error": float(np.abs(approx_counts - true_counts).mean()),
            }
        )
    jj_exact = build_apc_netlist(n_inputs, 0).logic_jj_count()
    jj_approx = build_apc_netlist(n_inputs, 1).logic_jj_count()
    return {
        "rows": rows,
        "jj_exact": jj_exact,
        "jj_approx": jj_approx,
        "jj_saving_fraction": (jj_exact - jj_approx) / jj_exact,
    }
