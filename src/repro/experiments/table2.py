"""Table 2 — CIFAR-10: accuracy vs energy efficiency, ours vs baselines.

The paper reports four SupeRBNN operating points (energy-efficiency
constraints trade accuracy for TOPS/W) plus a ResNet-18 row, against
DDN, IMB, STT-BNN, and CMOS-BNN. Our operating points sweep the SC
window length (L = 32, 16, 4, 1 — the cycle-count knob behind the
paper's 2x/4x/4.5x efficiency steps); accuracy is measured on the
hardware executor and efficiency comes from the cost model over the
compiled network's real workloads.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from repro.api import Engine
from repro.baselines.specs import CIFAR10_BASELINES, PAPER_SUPERBNN_CIFAR10
from repro.experiments.common import cifar_datasets, trained_vgg, training_gray_zone
from repro.hardware.config import HardwareConfig
from repro.hardware.cost import AcceleratorCostModel


def cifar10_comparison(
    window_lengths: Iterable[int] = (32, 16, 8, 4),
    crossbar_size: int = 72,
    gray_zone_ua: Optional[float] = None,
    deploy_gray_zone_ua: Optional[float] = None,
    epochs: int = 20,
    n_eval: int = 128,
    include_resnet: bool = False,
    seed: int = 0,
) -> Dict:
    """Ours (per operating point) + baselines + the paper's own rows.

    Training uses a fixed normalized noise (dVin = 1); deployment uses
    the *co-optimized* gray zone (dVin = 8, the dithering regime where
    the SC window is informative — the outcome of the Sec. 5.4
    optimization on this substrate). ``include_resnet`` adds the
    software-evaluated ResNet-18 row (its residual dataflow is not
    crossbar-mapped; see DESIGN.md).
    """
    if gray_zone_ua is None:
        # Fixed normalized noise (see experiments.common.training_gray_zone).
        gray_zone_ua = training_gray_zone(crossbar_size)
    if deploy_gray_zone_ua is None:
        deploy_gray_zone_ua = training_gray_zone(crossbar_size, dvin_target=8.0)
    hardware = HardwareConfig(
        crossbar_size=crossbar_size, gray_zone_ua=gray_zone_ua, window_bits=16
    )
    model, train, test, software_acc = trained_vgg(hardware, epochs=epochs, seed=seed)
    images = test.images[:n_eval]
    labels = test.labels[:n_eval]

    ours: List[Dict] = []
    for length in window_lengths:
        deploy = hardware.with_(
            window_bits=length, gray_zone_ua=deploy_gray_zone_ua
        )
        engine = Engine.from_model(model, deploy)
        accuracy = engine.evaluate(images, labels, backend="stochastic")
        cost = engine.cost_model(train.image_shape)
        summary = cost.summary()
        ours.append(
            {
                "design": f"SupeRBNN (VGG-Small, L={length})",
                "scheme": "binary",
                "accuracy_pct": accuracy * 100.0,
                "tops_per_w": summary["tops_per_w"],
                "tops_per_w_cooled": summary["tops_per_w_cooled"],
                "power_mw": summary["power_mw"],
                "throughput_images_per_ms": summary["throughput_images_per_ms"],
            }
        )

    resnet_row: Optional[Dict] = None
    if include_resnet:
        resnet_row = _resnet_row(hardware, epochs=max(epochs // 2, 4), seed=seed)

    baselines = [
        {
            "design": spec.name,
            "scheme": spec.scheme,
            "accuracy_pct": spec.accuracy,
            "tops_per_w": spec.tops_per_w,
        }
        for spec in CIFAR10_BASELINES
    ]
    return {
        "ours": ours,
        "resnet": resnet_row,
        "baselines": baselines,
        "paper_rows": list(PAPER_SUPERBNN_CIFAR10),
        "software_accuracy_pct": software_acc * 100.0,
    }


def _resnet_row(hardware: HardwareConfig, epochs: int, seed: int) -> Dict:
    """Software-evaluated ResNet-18 operating point."""
    from repro.core.trainer import Trainer, TrainingConfig
    from repro.data.loaders import DataLoader
    from repro.hardware.cost import LayerWorkload
    from repro.models.resnet import ResNet18

    train, test = cifar_datasets()
    model = ResNet18(
        image_size=train.images.shape[2], hardware=hardware, seed=seed
    )
    trainer = Trainer(model, TrainingConfig(epochs=epochs, warmup_epochs=2))
    trainer.fit(DataLoader(train, 64, seed=2))
    accuracy = trainer.evaluate(DataLoader(test, 256, shuffle=False, seed=0))

    workloads = []
    for _, module in model.named_modules():
        weight = getattr(module, "weight", None)
        if weight is None or weight.data.ndim not in (2, 4):
            continue
        if weight.data.ndim == 4:
            c_out, c_in, k, _ = weight.data.shape
            workloads.append(
                LayerWorkload(in_features=c_in * k * k, out_features=c_out, positions=16)
            )
        else:
            out_f, in_f = weight.data.shape
            workloads.append(LayerWorkload(in_features=in_f, out_features=out_f))
    cost = AcceleratorCostModel(hardware, workloads)
    summary = cost.summary()
    return {
        "design": "SupeRBNN (ResNet-18)",
        "scheme": "binary",
        "accuracy_pct": accuracy * 100.0,
        "tops_per_w": summary["tops_per_w"],
        "tops_per_w_cooled": summary["tops_per_w_cooled"],
        "power_mw": summary["power_mw"],
        "throughput_images_per_ms": summary["throughput_images_per_ms"],
    }
