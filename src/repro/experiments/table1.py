"""Table 1 — circuit latency, JJ count, energy vs crossbar size.

Our cost model regenerates the paper's rows bit-exactly (the JJ counts
decompose as 12 n^2 + 48 n at 5 zJ/JJ/cycle and 15 ps/line — see
:mod:`repro.hardware.cost`).
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.hardware.cost import crossbar_cost_table

#: The paper's Table 1, for direct comparison in tests and EXPERIMENTS.md.
PAPER_TABLE1 = {
    4: {"latency_ps": 60, "jj_count": 384, "energy_aj": 1.92},
    8: {"latency_ps": 120, "jj_count": 1152, "energy_aj": 5.76},
    16: {"latency_ps": 240, "jj_count": 3840, "energy_aj": 19.20},
    18: {"latency_ps": 270, "jj_count": 4752, "energy_aj": 23.76},
    36: {"latency_ps": 540, "jj_count": 17280, "energy_aj": 86.4},
    72: {"latency_ps": 1080, "jj_count": 65664, "energy_aj": 328.32},
    144: {"latency_ps": 2160, "jj_count": 255744, "energy_aj": 1278.72},
}


def crossbar_hardware_table(
    sizes: Sequence[int] = (4, 8, 16, 18, 36, 72, 144)
) -> List[Dict]:
    """Our Table 1 rows, each annotated with the paper's values."""
    rows = crossbar_cost_table(sizes)
    for row in rows:
        paper = PAPER_TABLE1.get(row["size"])
        if paper is not None:
            row["paper_latency_ps"] = paper["latency_ps"]
            row["paper_jj_count"] = paper["jj_count"]
            row["paper_energy_aj"] = paper["energy_aj"]
    return rows
