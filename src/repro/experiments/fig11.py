"""Fig. 11 — accuracy over the (gray-zone, crossbar-size) plane at L = 1.

The paper's surface shows accuracy depending non-monotonically on both
dIin and Cs, with multiple local peaks — the basis for the AME-driven
co-optimization of Sec. 5.4. We deploy the per-size reference models at
every grid point and measure hardware accuracy, plus the corresponding
analytic AME for comparison.
"""

from __future__ import annotations

from typing import Dict, Iterable, List

from repro.api import Engine
from repro.core.coopt import average_mismatch_error
from repro.experiments.common import trained_mlp, training_gray_zone
from repro.hardware.config import HardwareConfig


def accuracy_surface(
    gray_zones_ua: Iterable[float] = (0.6, 2.4, 10.0, 40.0),
    crossbar_sizes: Iterable[int] = (8, 16, 36, 72),
    window_bits: int = 1,
    epochs: int = 15,
    n_eval: int = 200,
    seed: int = 0,
) -> Dict:
    """Hardware accuracy and AME on the (dIin, Cs) grid.

    Returns ``{"grid": [{"gray_zone_ua", "crossbar_size", "accuracy",
    "ame"}...], "peaks": int}`` where ``peaks`` counts grid-local maxima
    of accuracy (the paper's "multiple accuracy peaks").
    """
    gray_zones = list(gray_zones_ua)
    sizes = list(crossbar_sizes)
    grid: List[Dict[str, float]] = []
    accuracy_matrix: List[List[float]] = []
    for cs in sizes:
        train_hw = HardwareConfig(
            crossbar_size=cs,
            gray_zone_ua=training_gray_zone(cs),
            window_bits=16,
        )
        model, _, test, _ = trained_mlp(train_hw, epochs=epochs, seed=seed)
        images = test.images[:n_eval]
        labels = test.labels[:n_eval]
        row = []
        for gz in gray_zones:
            deploy = train_hw.with_(gray_zone_ua=gz, window_bits=window_bits)
            engine = Engine.from_model(model, deploy)
            acc = engine.evaluate(images, labels, backend="stochastic")
            ame = average_mismatch_error(cs, gz, attenuation=deploy.attenuation)
            grid.append(
                {
                    "gray_zone_ua": gz,
                    "crossbar_size": cs,
                    "accuracy": acc,
                    "ame": ame,
                }
            )
            row.append(acc)
        accuracy_matrix.append(row)
    return {
        "grid": grid,
        "peaks": _count_local_maxima(accuracy_matrix),
        "gray_zones_ua": gray_zones,
        "crossbar_sizes": sizes,
    }


def _count_local_maxima(matrix: List[List[float]]) -> int:
    """Grid points >= all 4-neighbours (plateau ties count once each)."""
    peaks = 0
    n_rows = len(matrix)
    n_cols = len(matrix[0]) if matrix else 0
    for i in range(n_rows):
        for j in range(n_cols):
            value = matrix[i][j]
            neighbours = []
            if i > 0:
                neighbours.append(matrix[i - 1][j])
            if i < n_rows - 1:
                neighbours.append(matrix[i + 1][j])
            if j > 0:
                neighbours.append(matrix[i][j - 1])
            if j < n_cols - 1:
                neighbours.append(matrix[i][j + 1])
            if all(value >= n for n in neighbours):
                peaks += 1
    return peaks
