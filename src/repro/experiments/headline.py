"""Headline claims — the abstract's comparison ratios.

* ~7.8e4 x higher energy efficiency than the ReRAM IMB framework at a
  similar accuracy (Table 2),
* 205.8 x over IMB even after charging 400x cryocooling,
* >= 2 orders of magnitude over RSFQ/ERSFQ superconducting designs,
* 153 x over SC-AQFP (Table 3).

We recompute each ratio from our measured rows and report it next to
the paper's value.
"""

from __future__ import annotations

from typing import Dict

from repro.baselines.specs import get_baseline
from repro.experiments.table2 import cifar10_comparison
from repro.experiments.table3 import mnist_comparison

PAPER_CLAIMS = {
    "vs_imb": 7.8e4,
    "vs_imb_cooled": 205.8,
    "vs_ersfq_min_orders": 2.0,
    "vs_sc_aqfp": 153.0,
}


def headline_claims(
    cifar_epochs: int = 20,
    mnist_epochs: int = 15,
    seed: int = 0,
) -> Dict:
    """Measured ratios next to the paper's claims."""
    table2 = cifar10_comparison(epochs=cifar_epochs, seed=seed)
    table3 = mnist_comparison(epochs=mnist_epochs, seed=seed)

    # Use our *most accurate* operating point (the paper's comparison at
    # "similar model accuracy" is its L=32-class row).
    best_row = max(table2["ours"], key=lambda r: r["accuracy_pct"])
    imb = get_baseline("IMB", "cifar10")
    ersfq = get_baseline("ERSFQ", "mnist")
    sc_aqfp = get_baseline("SC-AQFP", "mnist")

    import math

    measured = {
        "vs_imb": best_row["tops_per_w"] / imb.tops_per_w,
        "vs_imb_cooled": best_row["tops_per_w_cooled"] / imb.tops_per_w,
        "vs_ersfq_min_orders": math.log10(
            table3["ours"]["tops_per_w"] / ersfq.tops_per_w
        ),
        "vs_sc_aqfp": table3["ours"]["tops_per_w"] / sc_aqfp.tops_per_w,
    }
    return {
        "measured": measured,
        "paper": dict(PAPER_CLAIMS),
        "our_best_row": best_row,
        "our_mnist_row": table3["ours"],
    }
