"""Fig. 4 — AQFP buffer output probability vs input current.

The paper plots P('1') against input current at 4.2 K and observes the
randomized-switching boundary near +-2 uA. We regenerate the analytic
curve (Eq. 1) together with a Monte-Carlo estimate sampled from the
device model, and report the measured boundary.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from repro.device.aqfp import AqfpBuffer


def gray_zone_response(
    current_range_ua: float = 4.0,
    n_points: int = 33,
    n_samples: int = 4000,
    gray_zone_ua: float = 2.4,
    seed: int = 0,
) -> Dict:
    """Analytic + sampled P('1') curve and the +-boundary estimate.

    Returns ``{"points": [{"input_ua", "probability", "sampled"}...],
    "boundary_ua": float}``.
    """
    buffer = AqfpBuffer(gray_zone_ua=gray_zone_ua, seed=seed)
    currents = np.linspace(-current_range_ua, current_range_ua, n_points)
    analytic = buffer.probability_of_one(currents)
    samples = buffer.sample(np.repeat(currents, n_samples).reshape(n_points, n_samples))
    sampled = (samples > 0).mean(axis=1)
    points: List[Dict[str, float]] = [
        {
            "input_ua": float(i),
            "probability": float(p),
            "sampled": float(s),
        }
        for i, p, s in zip(currents, analytic, sampled)
    ]
    return {
        "points": points,
        "boundary_ua": buffer.gray_zone_boundary_ua(confidence=0.99),
        "gray_zone_ua": gray_zone_ua,
    }
