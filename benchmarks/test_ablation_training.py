"""Ablations: randomized-aware training, ReCU, approximate APC.

These regenerate the design-choice evidence DESIGN.md calls out:

* randomized-aware training holds up on stochastic hardware better than
  plain STE training (paper Sec. 5.1);
* ReCU keeps tail weights alive without hurting accuracy (Sec. 5.3);
* the approximate APC trades a bounded undercount for a large JJ saving
  (Sec. 4.3).
"""

from conftest import run_once

from repro.experiments.ablations import (
    accumulation_ablation,
    randomized_training_ablation,
    recu_ablation,
)


def test_ablation_randomized_training(benchmark, report):
    result = run_once(benchmark, randomized_training_ablation, epochs=12)

    lines = [f"{'training':<15} {'software':>9} {'hardware':>9} {'drop':>7}"]
    for label, row in result.items():
        lines.append(
            f"{label:<15} {row['software_accuracy']:>9.3f} "
            f"{row['hardware_accuracy']:>9.3f} {row['degradation']:>7.3f}"
        )
    report("ablation_randomized_training", lines)

    rand = result["randomized"]
    det = result["deterministic"]
    assert rand["software_accuracy"] > 0.4
    assert det["software_accuracy"] > 0.4
    # The core claim: randomized-aware training degrades no more.
    assert rand["degradation"] <= det["degradation"] + 0.10
    assert rand["hardware_accuracy"] > 0.3


def test_ablation_recu(benchmark, report):
    result = run_once(benchmark, recu_ablation, epochs=12)

    lines = [f"{'variant':<10} {'accuracy':>9} {'tail max/mean|w|':>17}"]
    for label, row in result.items():
        lines.append(
            f"{label:<10} {row['accuracy']:>9.3f} {row['max_over_mean_abs']:>17.2f}"
        )
    report("ablation_recu", lines)

    # ReCU clamps the tails: max |w| relative to mean |w| shrinks.
    assert result["recu"]["max_over_mean_abs"] < result["no_recu"]["max_over_mean_abs"]
    # Without losing accuracy (allow small noise).
    assert result["recu"]["accuracy"] >= result["no_recu"]["accuracy"] - 0.08


def test_ablation_approximate_apc(benchmark, report):
    result = run_once(benchmark, accumulation_ablation, n_inputs=16, n_trials=2000)

    lines = [f"{'P(bit=1)':>9} {'E[true]':>8} {'E[approx]':>10} {'mean |err|':>11}"]
    for row in result["rows"]:
        lines.append(
            f"{row['probability']:>9.2f} {row['mean_true']:>8.2f} "
            f"{row['mean_approx']:>10.2f} {row['mean_abs_error']:>11.2f}"
        )
    lines.append(
        f"JJ cost: exact {result['jj_exact']}, approximate {result['jj_approx']} "
        f"({result['jj_saving_fraction'] * 100:.0f}% saved)"
    )
    report("ablation_apc", lines)

    assert result["jj_saving_fraction"] > 0.2
    for row in result["rows"]:
        assert row["mean_approx"] <= row["mean_true"] + 1e-9
