"""Headline claims — the abstract's efficiency ratios, recomputed.

Paper: ~7.8e4x over ReRAM IMB; 205.8x over IMB with cooling charged;
>= 2 orders over RSFQ/ERSFQ; 153x over SC-AQFP. Shape targets: same
direction, within ~an order of magnitude of each ratio.
"""

from conftest import run_once

from repro.experiments.headline import headline_claims


def test_headline_claims(benchmark, report):
    result = run_once(benchmark, headline_claims, cifar_epochs=20, mnist_epochs=15)
    measured = result["measured"]
    paper = result["paper"]

    lines = [f"{'claim':<22} {'measured':>12} {'paper':>12}"]
    lines.append(
        f"{'vs IMB (x)':<22} {measured['vs_imb']:>12.3g} {paper['vs_imb']:>12.3g}"
    )
    lines.append(
        f"{'vs IMB cooled (x)':<22} {measured['vs_imb_cooled']:>12.3g} "
        f"{paper['vs_imb_cooled']:>12.3g}"
    )
    lines.append(
        f"{'vs ERSFQ (orders)':<22} {measured['vs_ersfq_min_orders']:>12.2f} "
        f">={paper['vs_ersfq_min_orders']:>10.1f}"
    )
    lines.append(
        f"{'vs SC-AQFP (x)':<22} {measured['vs_sc_aqfp']:>12.3g} "
        f"{paper['vs_sc_aqfp']:>12.3g}"
    )
    report("headline_claims", lines)

    # Direction + rough magnitude of every headline claim.
    assert measured["vs_imb"] > 1e2  # paper: 7.8e4
    assert measured["vs_imb_cooled"] > 1.0  # paper: 205.8
    assert measured["vs_ersfq_min_orders"] >= 1.5  # paper: >= 2 orders
    assert measured["vs_sc_aqfp"] > 50.0  # paper: 153
