"""Fig. 4 — P('1') vs input current on the AQFP buffer.

Regenerates the probability curve and checks the paper's observation
that randomized switching is confined to roughly +-2 uA.
"""

from conftest import run_once

from repro.experiments.fig4 import gray_zone_response


def test_fig4_gray_zone_response(benchmark, report):
    result = run_once(benchmark, gray_zone_response, n_points=33, n_samples=4000)

    lines = [
        f"{'Iin (uA)':>9} {'P(1) analytic':>14} {'P(1) sampled':>13}",
    ]
    for point in result["points"][::4]:
        lines.append(
            f"{point['input_ua']:>9.2f} {point['probability']:>14.4f} "
            f"{point['sampled']:>13.4f}"
        )
    lines.append(
        f"randomized-switching boundary: +-{result['boundary_ua']:.2f} uA "
        "(paper Fig. 4: ~ +-2 uA)"
    )
    report("fig4_gray_zone", lines)

    assert 1.5 < result["boundary_ua"] < 2.5
    for point in result["points"]:
        assert abs(point["sampled"] - point["probability"]) < 0.05
