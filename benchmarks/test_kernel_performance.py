"""Microbenchmarks of the simulation kernels (repeatable, timed hot).

Not a paper artifact — these track the cost of the library's inner loops
(crossbar sampling, SC counting, binary convolution) so performance
regressions in the simulator itself are visible. Both execution paths of
the sampling engine are timed: the fused Binomial sample-and-count fast
path (``sample_window_counts``, exact APC) and the bit-level path on raw
and bit-packed windows (approximate APC). Run with
``--bench-json=BENCH_kernels.json`` to append the timings to the
cross-PR trajectory file.
"""

import numpy as np
import pytest

from repro.api import Engine
from repro.api.parallel import StochasticParallelBackend
from repro.autograd import Tensor
from repro.autograd import functional as F
from repro.circuits.apc import ApproximateParallelCounter
from repro.hardware.accelerator import TiledLinearLayer
from repro.hardware.config import HardwareConfig
from repro.hardware.crossbar import CrossbarArray
from repro.mapping.compiler import CompiledNetwork, HeadStage, LinearStage, SignStage
from repro.sc.packed import pack_bits


@pytest.fixture(scope="module")
def pm(request):
    rng = np.random.default_rng(0)

    def make(shape):
        return np.where(rng.random(shape) < 0.5, 1.0, -1.0)

    return make


def test_perf_crossbar_sample_window(benchmark, pm):
    """Fused fast path: Binomial per-column window counts."""
    cfg = HardwareConfig(crossbar_size=72, window_bits=16)
    xbar = CrossbarArray(cfg, pm((72, 72)), seed=0)
    activations = pm((64, 72))
    xbar.sample_window_counts(activations)  # build cached tables once
    result = benchmark(xbar.sample_window_counts, activations)
    assert result.shape == (64, 72)
    assert result.min() >= 0 and result.max() <= 16


def test_perf_crossbar_sample_window_bits(benchmark, pm):
    """Bit-level reference path: the raw (L, N, cols) window."""
    cfg = HardwareConfig(crossbar_size=72, window_bits=16)
    xbar = CrossbarArray(cfg, pm((72, 72)), seed=0)
    activations = pm((64, 72))
    result = benchmark(xbar.sample_window, activations)
    assert result.shape == (16, 64, 72)


def test_perf_crossbar_sample_window_packed(benchmark, pm):
    """Bit-level path with uint64 bit-plane packing."""
    cfg = HardwareConfig(crossbar_size=72, window_bits=16)
    xbar = CrossbarArray(cfg, pm((72, 72)), seed=0)
    activations = pm((64, 72))
    result = benchmark(xbar.sample_window, activations, packed=True)
    assert result.words.shape == (1, 64, 72)
    assert result.n_bits == 16


def test_perf_tiled_layer_forward(benchmark, pm):
    """Exact APC -> fused-count fast path end to end."""
    cfg = HardwareConfig(crossbar_size=36, window_bits=8)
    layer = TiledLinearLayer(cfg, pm((144, 64)), seed=0)
    activations = pm((32, 144))
    layer.forward(activations)  # build cached sampler tables once
    result = benchmark(layer.forward, activations)
    assert result.shape == (32, 64)


def test_perf_tiled_layer_forward_fused_batched(benchmark, pm):
    """`stochastic-fused-batched` backend: one Generator.binomial draw
    over the concatenated column tiles (the RNG-bottleneck attack)."""
    cfg = HardwareConfig(crossbar_size=36, window_bits=8)
    layer = TiledLinearLayer(cfg, pm((144, 64)), seed=0)
    activations = pm((32, 144))
    layer.forward_fused_batched(activations)  # warm caches once
    result = benchmark(layer.forward_fused_batched, activations)
    assert result.shape == (32, 64)


def test_perf_tiled_layer_forward_batched(benchmark, pm):
    """The vendored batched-draw kernel (``repro.sc.binomial``): the
    layer pass on caller-owned uniforms — one ``Generator.random`` call
    sliced into the vectorized inverse-CDF gather. Same laws as the
    ``fused_batched`` row above; this row should beat it (table gather
    vs ``Generator.binomial``)."""
    from repro.sc.binomial import DrawBatch

    cfg = HardwareConfig(crossbar_size=36, window_bits=8)
    layer = TiledLinearLayer(cfg, pm((144, 64)), seed=0)
    activations = pm((32, 144))
    layer.forward(activations)  # build cached sampler tables once
    total = layer.n_row_tiles * activations.shape[0] * layer.out_features
    rng = np.random.default_rng(0)

    def one_pass():
        return layer.forward_batched(
            activations, uniforms=DrawBatch(rng, total)
        )

    result = benchmark(one_pass)
    assert result.shape == (32, 64)


def test_perf_tiled_layer_forward_bitlevel(benchmark, pm):
    """Approximate APC -> packed bit-level path end to end."""
    cfg = HardwareConfig(crossbar_size=36, window_bits=8)
    layer = TiledLinearLayer(cfg, pm((144, 64)), seed=0, approximate_layers=1)
    activations = pm((32, 144))
    result = benchmark(layer.forward, activations)
    assert result.shape == (32, 64)


def test_perf_apc_count(benchmark, pm):
    apc = ApproximateParallelCounter(0)
    bits = (np.random.default_rng(1).random((64, 16, 256)) < 0.5).astype(np.int64)
    result = benchmark(apc.count, bits, axis=1)
    assert result.shape == (64, 256)


def test_perf_apc_count_packed(benchmark, pm):
    """Packed-word OR-compress + popcount throughput (not comparable to
    test_perf_apc_count: this pushes 64x the bits — 16 lines of 64-bit
    windows across 64*256 columns — through the approximate APC).
    """
    apc = ApproximateParallelCounter(1)
    bits = np.random.default_rng(1).random((16, 64, 64, 256)) < 0.5
    words = pack_bits(bits, axis=1)
    result = benchmark(apc.count_packed, words)
    assert result.shape == (64, 256)


def test_perf_binary_conv2d(benchmark, pm):
    x = Tensor(pm((16, 12, 16, 16)))
    w = Tensor(pm((16, 12, 3, 3)))
    result = benchmark(lambda: F.conv2d(x, w, padding=1))
    assert result.shape == (16, 16, 16, 16)


# ----------------------------------------------------------------------
# Session-level shard execution: serial vs the "stochastic-parallel"
# process pool. One VGG-eval-sized batch (256 images) split into
# micro-batch shards; same seed everywhere, so every row computes
# bit-identical logits and the timings compare pure execution strategy.
# The multi-worker rows beat serial only when the host has cores to
# spare — on a single-core box they measure the IPC overhead floor
# (pickled shards + per-shard reseed), which is worth tracking too.
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def shard_engine(pm):
    """A crossbar-heavy engine built directly from +-1 weights (no
    training): 288->144 on Cs=36 (8x4 tiles) plus a software head."""
    cfg = HardwareConfig(crossbar_size=36, window_bits=8)
    layer = TiledLinearLayer(cfg, pm((288, 144)), seed=0)
    head = HeadStage(
        weight=pm((10, 144)),
        alpha=np.ones(10),
        gamma=np.ones(10),
        beta=np.zeros(10),
        mean=np.zeros(10),
        var=np.ones(10),
        eps=1e-5,
    )
    network = CompiledNetwork([SignStage(), LinearStage(layer=layer), head], cfg)
    engine = Engine(network, micro_batch=32)
    images = pm((256, 288))
    engine.run(images[:32], seed=0)  # warm the sampler tables once
    return engine, images


def _bench_session(benchmark, engine, images, backend, rounds=9):
    session = engine.session(seed=0, backend=backend)
    result = session.run(images)  # warm path (and worker pool) once
    benchmark.pedantic(session.run, args=(images,), rounds=rounds, iterations=1)
    return result


def test_perf_session_serial_stochastic(benchmark, shard_engine):
    # 15 rounds (vs the suite's 9): this row and the warm-pool row below
    # are ratio-gated against each other by bench-smoke, and the min of
    # a noisy-host sample converges to the true floor with more rounds.
    engine, images = shard_engine
    result = _bench_session(benchmark, engine, images, "stochastic", rounds=15)
    assert result.logits.shape == (256, 10)
    assert result.micro_batches == 8


def test_perf_session_adaptive_warm_pool(benchmark, shard_engine):
    """The warm-pool acceptance row: a single-worker pool, warmed before
    timing, on the standard burst. The chooser — no
    ``REPRO_FORCE_SCHEDULER`` anywhere — must route the burst to the
    pooled mode on its own, and the pooled logits must be bit-identical
    to a serial session with the same seed. ``bench-smoke`` (CI) guards
    this row against >20% regressions.

    Deliberately defined right after the serial row it is ratio-gated
    against: benchmarks run in definition order, and keeping the
    compared pair back-to-back stops slow within-run host drift from
    leaking into the pooled/serial ratio."""
    from repro.api import AdaptiveScheduler

    engine, images = shard_engine
    with AdaptiveScheduler(workers=1) as scheduler:
        scheduler.warm(engine.network, inner="stochastic")
        session = engine.session(seed=0, backend="stochastic", scheduler=scheduler)
        session.run(images)  # settle the pooled path once
        benchmark.pedantic(session.run, args=(images,), rounds=15, iterations=1)
        with engine.session(
            seed=0, backend="stochastic", scheduler=scheduler
        ) as fresh:
            pooled = fresh.run(images)
    with engine.session(seed=0, backend="stochastic") as fresh:
        serial = fresh.run(images)
    assert {d.mode for d in pooled.decisions} == {"shard-parallel"}
    assert np.array_equal(pooled.logits, serial.logits)


def test_perf_session_serial_batched(benchmark, shard_engine):
    """The vendored batched-draw kernel (``stochastic-batched``): every
    uniform a shard will consume hoisted into one ``Generator.random``
    call, served to the fused inverse-CDF lookup as consecutive slices.
    Bit-identical to the ``stochastic`` row's sampling; this row should
    beat it — same math, one RNG invocation per shard instead of one
    per layer pass."""
    engine, images = shard_engine
    result = _bench_session(benchmark, engine, images, "stochastic-batched")
    assert result.logits.shape == (256, 10)
    assert result.micro_batches == 8


@pytest.mark.parametrize("workers", [1, 2, 4])
def test_perf_session_parallel_shards(benchmark, shard_engine, workers):
    engine, images = shard_engine
    with StochasticParallelBackend(workers=workers) as backend:
        result = _bench_session(benchmark, engine, images, backend)
    assert result.logits.shape == (256, 10)
    assert result.micro_batches == 8


# ----------------------------------------------------------------------
# Adaptive scheduler vs the fixed schedulers, on the same request the
# serial/parallel session rows above time: the adaptive row should
# track whichever fixed row its cost model predicts is cheapest. With
# default coefficients the 8k-window burst sits above break-even, but a
# *cold* scheduler is charged the pool warmup, so the first row (cold,
# 4 workers) tracks serial; the warm-pool acceptance row (defined next
# to the serial row above, so the gated pair times back-to-back) is the
# one the chooser sends to the pool. The small-batch row shows the
# break-even fallback costs nothing.
# `make bench` also refreshes the calibrated coefficients next to the
# timings (benchmarks/results/cost_coefficients.json).
# ----------------------------------------------------------------------
def test_perf_session_adaptive_scheduler(benchmark, shard_engine):
    from repro.api import AdaptiveScheduler

    engine, images = shard_engine
    with AdaptiveScheduler(workers=4) as scheduler:
        session = engine.session(seed=0, backend="stochastic", scheduler=scheduler)
        result = session.run(images)  # warm path (and any pool) once
        benchmark.pedantic(session.run, args=(images,), rounds=9, iterations=1)
        result = session.run(images)
    assert result.logits.shape == (256, 10)
    assert result.decisions is not None  # chooser telemetry present
    assert all(d.mode in ("serial", "shard-parallel") for d in result.decisions)


def test_perf_session_adaptive_small_batch(benchmark, shard_engine):
    """Sub-break-even request: the chooser must fall back to serial, so
    this row measures the pure decision overhead on tiny plans."""
    from repro.api import AdaptiveScheduler

    engine, images = shard_engine
    small = images[:16]
    with AdaptiveScheduler(workers=4) as scheduler:
        session = engine.session(seed=0, backend="stochastic", scheduler=scheduler)
        session.run(small)
        benchmark.pedantic(session.run, args=(small,), rounds=9, iterations=1)
        result = session.run(small)
    assert result.logits.shape == (16, 10)
    assert {d.mode for d in result.decisions} == {"serial"}


def test_perf_cost_model_calibration(benchmark, shard_engine, request):
    """One calibration pass over the shard engine. Only a `make bench`
    run (--bench-json active) refreshes the persisted coefficients —
    plain test runs must not overwrite the tracked artifact with
    whatever machine happened to run them."""
    import pathlib

    from repro.api import calibrate

    engine, images = shard_engine
    model = benchmark.pedantic(
        calibrate,
        args=(engine, images[:64]),
        kwargs=dict(repeats=1, workers=2),
        rounds=1,
        iterations=1,
    )
    coefficients = model.coefficients
    assert coefficients.source == "calibrated"
    assert coefficients.window_cost_s > 0
    if request.config.getoption("--bench-json"):
        results_dir = pathlib.Path(__file__).parent / "results"
        results_dir.mkdir(exist_ok=True)
        coefficients.save(results_dir / "cost_coefficients.json")


# ----------------------------------------------------------------------
# Serving front-ends: the PR 3 thread-pool `Serving` baseline vs the
# runtime's coalescing `ServingDaemon`, both at 4 workers on the
# in-process "stochastic" backend over the same 8 x 32-row requests.
# The daemon merges the burst into coalesced waves (one execution sweep,
# no thread handoff per request), so its throughput should meet or beat
# the thread-pool baseline — the rows in BENCH_kernels.json track that
# claim across PRs.
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def serving_requests(shard_engine):
    _, images = shard_engine
    return [images[i * 32 : (i + 1) * 32] for i in range(8)]


def test_perf_serving_threadpool(benchmark, shard_engine, serving_requests):
    from repro.api import Serving

    engine, _ = shard_engine
    with Serving(engine, workers=4, backend="stochastic", seed=0) as front:
        front.serve(serving_requests)  # warm
        benchmark.pedantic(
            front.serve, args=(serving_requests,), rounds=9, iterations=1
        )
        report = front.serve(serving_requests)
    assert report.n_requests == 8
    assert report.total_images == 256


def test_perf_daemon_coalesced(benchmark, shard_engine, serving_requests):
    from repro.api import ServingDaemon

    engine, _ = shard_engine
    # window=0: batch submission needs no arrival wait — the consumer
    # coalesces whatever the burst already queued and never idles out a
    # deadline (a nonzero window only pays off for trickling arrivals).
    with ServingDaemon(
        engine,
        backend="stochastic",
        seed=0,
        seed_per_request=True,
        coalesce_window_s=0.0,
    ) as daemon:
        daemon.serve(serving_requests)  # warm
        benchmark.pedantic(
            daemon.serve, args=(serving_requests,), rounds=9, iterations=1
        )
        report = daemon.serve(serving_requests)
    assert report.n_requests == 8
    assert report.total_images == 256
    # The burst coalesces: far fewer execution waves than requests.
    assert report.waves is not None and report.waves <= report.n_requests
