"""Table 3 — MNIST MLP: ours vs SyncBNN / RSFQ / ERSFQ / SC-AQFP.

Shape targets: 2+ orders of magnitude better TOPS/W than the RSFQ/ERSFQ
superconducting designs and >100x over SC-AQFP at comparable accuracy.
"""

from conftest import run_once

from repro.experiments.table3 import mnist_comparison


def test_table3_mnist_comparison(benchmark, report):
    result = run_once(benchmark, mnist_comparison, epochs=15)

    lines = [f"{'design':<18} {'acc %':>7} {'TOPS/W':>11} {'w/ cooling':>11}"]
    ours = result["ours"]
    lines.append(
        f"{ours['design']:<18} {ours['accuracy_pct']:>7.1f} "
        f"{ours['tops_per_w']:>11.3g} {ours['tops_per_w_cooled']:>11.3g}"
    )
    for row in result["baselines"]:
        lines.append(
            f"{row['design']:<18} {row['accuracy_pct']:>7.1f} "
            f"{row['tops_per_w']:>11.3g} {row['tops_per_w_cooled']:>11.3g}"
        )
    paper = result["paper_row"]
    lines.append(
        f"paper row: {paper['accuracy']}% @ {paper['tops_per_w']:.2g} "
        f"({paper['tops_per_w_cooled']:.2g} cooled)"
    )
    report("table3_mnist", lines)

    by_name = {row["design"]: row for row in result["baselines"]}
    # >= 2 orders of magnitude over ERSFQ (paper's strongest SFQ row).
    assert ours["tops_per_w"] / by_name["ERSFQ"]["tops_per_w"] > 1e2
    # > 100x over the pure-SC AQFP design (paper: 153x).
    assert ours["tops_per_w"] / by_name["SC-AQFP"]["tops_per_w"] > 1e2
    # Cooling charged at 400x.
    assert ours["tops_per_w"] / ours["tops_per_w_cooled"] == 400.0
    # Hardware accuracy in a usable band.
    assert ours["accuracy_pct"] > 40.0
