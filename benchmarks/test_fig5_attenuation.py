"""Fig. 5 — crossbar current attenuation and the Eq. 2 power-law fit."""

from conftest import run_once

from repro.experiments.fig5 import attenuation_curve


def test_fig5_attenuation_curve(benchmark, report):
    result = run_once(benchmark, attenuation_curve)

    lines = [f"{'Cs':>5} {'measured (uA)':>14} {'fitted (uA)':>12}"]
    for point in result["points"]:
        lines.append(
            f"{point['crossbar_size']:>5d} {point['measured_ua']:>14.3f} "
            f"{point['fitted_ua']:>12.3f}"
        )
    lines.append(
        f"fit: I1(Cs) = {result['amplitude_ua']:.2f} * Cs^-{result['exponent']:.3f} "
        f"(max rel. error {result['max_relative_fit_error'] * 100:.1f}%)"
    )
    report("fig5_attenuation", lines)

    measured = [p["measured_ua"] for p in result["points"]]
    assert all(a > b for a, b in zip(measured, measured[1:]))  # attenuates
    assert result["max_relative_fit_error"] < 0.15  # Eq. 2 is a good fit
    assert result["exponent"] > 0  # B positive, as the paper states
