"""Standard-burst smoke gate for the warm-pool adaptive row.

Rebuilds the exact engine/burst the kernel-benchmark session rows time
(288->144 on Cs=36, 256 images x micro-batch 32 = 8 shards, 8192
windows), warms a single-worker adaptive scheduler, and checks three
things:

1. The cost-model chooser — with no ``REPRO_FORCE_SCHEDULER`` anywhere —
   routes the warm burst to a pooled mode.
2. The pooled logits are bit-identical to a serial session with the
   same seed.
3. The pooled mode has not regressed more than ``--threshold`` (default
   20%) against the committed ``BENCH_kernels.json`` trajectory.

Wall-clock times recorded on one machine mean nothing on another, so
the regression check compares the *pooled/serial ratio*: this run's
``adaptive-warm / serial`` minimum against the same ratio from the most
recent committed run that carries both rows. A ratio drift >threshold
fails the gate; the absolute times are printed for the log.

Skipping: record the reference run with a label containing
``[skip-bench-smoke]`` (e.g. ``make bench
BENCH_LABEL='... [skip-bench-smoke]'``) and the gate passes without
measuring — the escape hatch for rows known to be unrepresentative
(e.g. recorded on a loaded machine).
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import time

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
POOLED_ROW = "test_perf_session_adaptive_warm_pool"
SERIAL_ROW = "test_perf_session_serial_stochastic"
SKIP_TOKEN = "[skip-bench-smoke]"


def reference_ratio(trajectory: pathlib.Path):
    """(ratio, label) from the newest committed run carrying both rows,
    or (None, reason) when the gate cannot (or should not) compare."""
    if not trajectory.exists():
        return None, f"no trajectory file at {trajectory}"
    try:
        runs = json.loads(trajectory.read_text()).get("runs", [])
    except (json.JSONDecodeError, AttributeError):
        return None, f"unreadable trajectory file at {trajectory}"
    for run in reversed(runs):
        rows = run.get("benchmarks", {})
        pooled = (rows.get(POOLED_ROW) or {}).get("min_s")
        serial = (rows.get(SERIAL_ROW) or {}).get("min_s")
        if not pooled or not serial:
            continue
        label = run.get("label") or ""
        if SKIP_TOKEN in label:
            return None, f"reference run labeled {SKIP_TOKEN}: {label!r}"
        return pooled / serial, label
    return None, "no committed run carries both the pooled and serial rows"


def measure(rounds: int):
    """Run the standard burst: returns (pooled_min_s, serial_min_s)
    after asserting the chooser picked a pooled mode bit-identically."""
    import numpy as np

    from repro.api import AdaptiveScheduler, Engine
    from repro.hardware.accelerator import TiledLinearLayer
    from repro.hardware.config import HardwareConfig
    from repro.mapping.compiler import (
        CompiledNetwork,
        HeadStage,
        LinearStage,
        SignStage,
    )

    rng = np.random.default_rng(0)

    def pm(shape):
        return np.where(rng.random(shape) < 0.5, 1.0, -1.0)

    cfg = HardwareConfig(crossbar_size=36, window_bits=8)
    layer = TiledLinearLayer(cfg, pm((288, 144)), seed=0)
    head = HeadStage(
        weight=pm((10, 144)),
        alpha=np.ones(10),
        gamma=np.ones(10),
        beta=np.zeros(10),
        mean=np.zeros(10),
        var=np.ones(10),
        eps=1e-5,
    )
    network = CompiledNetwork([SignStage(), LinearStage(layer=layer), head], cfg)
    engine = Engine(network, micro_batch=32)
    images = pm((256, 288))
    engine.run(images[:32], seed=0)  # warm sampler tables once

    def min_of(session):
        session.run(images)  # settle
        best = None
        for _ in range(rounds):
            start = time.perf_counter()
            session.run(images)
            wall = time.perf_counter() - start
            best = wall if best is None else min(best, wall)
        return best

    with engine.session(seed=0, backend="stochastic") as session:
        serial_logits = session.run(images).logits
        serial_min = min_of(session)

    with AdaptiveScheduler(workers=1) as scheduler:
        scheduler.warm(engine.network, inner="stochastic")
        with engine.session(
            seed=0, backend="stochastic", scheduler=scheduler
        ) as session:
            pooled = session.run(images)
            modes = {d.mode for d in pooled.decisions}
            if modes != {"shard-parallel"}:
                raise SystemExit(
                    f"FAIL: warm chooser picked {sorted(modes)}, expected "
                    "the pooled mode ['shard-parallel']"
                )
            if not np.array_equal(pooled.logits, serial_logits):
                raise SystemExit(
                    "FAIL: pooled logits are not bit-identical to serial"
                )
            pooled_min = min_of(session)
    return pooled_min, serial_min


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument(
        "--bench-json",
        default=str(REPO_ROOT / "BENCH_kernels.json"),
        help="committed trajectory file holding the reference rows",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=1.20,
        help="maximum allowed pooled/serial ratio drift (1.20 = +20%%)",
    )
    parser.add_argument(
        "--rounds", type=int, default=5, help="timed repetitions (min taken)"
    )
    args = parser.parse_args(argv)

    ref, label = reference_ratio(pathlib.Path(args.bench_json))
    if ref is None:
        print(f"bench-smoke: SKIP ({label})")
        return 0
    pooled_min, serial_min = measure(args.rounds)
    ratio = pooled_min / serial_min
    print(
        f"bench-smoke: pooled {pooled_min * 1e3:.2f}ms serial "
        f"{serial_min * 1e3:.2f}ms ratio {ratio:.3f} "
        f"(committed {ref:.3f}, from {label!r})"
    )
    if ratio > args.threshold * ref:
        print(
            f"bench-smoke: FAIL — pooled/serial ratio {ratio:.3f} exceeds "
            f"{args.threshold:.2f}x the committed {ref:.3f}"
        )
        return 1
    print("bench-smoke: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
