"""Benchmark-suite fixtures: result reporting to benchmarks/results/."""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture
def report():
    """Write a named result table to benchmarks/results/<name>.txt and stdout.

    Each benchmark regenerates a paper table/figure; the text artifact
    survives pytest's output capture so EXPERIMENTS.md can quote it.
    """

    def _report(name: str, lines) -> None:
        RESULTS_DIR.mkdir(exist_ok=True)
        text = "\n".join(str(line) for line in lines) + "\n"
        (RESULTS_DIR / f"{name}.txt").write_text(text)
        print(f"\n=== {name} ===\n{text}")

    return _report


def run_once(benchmark, fn, *args, **kwargs):
    """Time a heavy experiment exactly once (training runs are not
    repeatable at benchmark granularity)."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
