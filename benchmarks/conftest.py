"""Benchmark-suite fixtures: result reporting to benchmarks/results/,
plus a ``--bench-json`` option that appends the timed kernel results to a
JSON trajectory file so perf is tracked across PRs."""

from __future__ import annotations

import datetime
import json
import pathlib
import subprocess

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def pytest_addoption(parser):
    parser.addoption(
        "--bench-json",
        action="store",
        default=None,
        metavar="PATH",
        help=(
            "Append this run's pytest-benchmark timings to PATH as JSON "
            "(e.g. BENCH_kernels.json). Each invocation adds one run "
            "entry, so the file accumulates the perf trajectory."
        ),
    )
    parser.addoption(
        "--bench-label",
        action="store",
        default=None,
        metavar="TEXT",
        help=(
            "Label recorded on the run entry appended by --bench-json. "
            "Without it the label is derived from the current git HEAD, "
            "so every appended run is attributable — the trajectory file "
            "is only useful when each row says what code produced it."
        ),
    )


def _derived_label() -> str:
    """A git-derived fallback label: short sha + HEAD subject (plus a
    dirty marker), so unlabeled ``make bench`` runs still record which
    code produced them."""
    try:
        here = pathlib.Path(__file__).parent
        sha = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=here, capture_output=True, text=True, timeout=10,
        ).stdout.strip()
        subject = subprocess.run(
            ["git", "log", "-1", "--format=%s"],
            cwd=here, capture_output=True, text=True, timeout=10,
        ).stdout.strip()
        dirty = subprocess.run(
            ["git", "status", "--porcelain"],
            cwd=here, capture_output=True, text=True, timeout=10,
        ).stdout.strip()
        if not sha:
            return "unlabeled (no git metadata)"
        mark = "+dirty" if dirty else ""
        return f"auto @ {sha}{mark}: {subject}"
    except (OSError, subprocess.SubprocessError):
        return "unlabeled (no git metadata)"


def _stats_summary(bench) -> dict:
    data = bench.as_dict(include_data=False, stats=True)
    stats = data.get("stats", {})
    return {
        "mean_s": stats.get("mean"),
        "min_s": stats.get("min"),
        "stddev_s": stats.get("stddev"),
        "rounds": stats.get("rounds"),
    }


def pytest_sessionfinish(session, exitstatus):
    path = session.config.getoption("--bench-json")
    if not path:
        return
    bench_session = getattr(session.config, "_benchmarksession", None)
    if bench_session is None or not bench_session.benchmarks:
        return
    target = pathlib.Path(path)
    runs = []
    if target.exists():
        try:
            runs = json.loads(target.read_text()).get("runs", [])
        except (json.JSONDecodeError, AttributeError):
            runs = []
    label = session.config.getoption("--bench-label") or _derived_label()
    runs.append(
        {
            "timestamp": datetime.datetime.now(datetime.timezone.utc).isoformat(
                timespec="seconds"
            ),
            "label": label,
            "benchmarks": {
                bench.name: _stats_summary(bench)
                for bench in bench_session.benchmarks
            },
        }
    )
    target.write_text(json.dumps({"runs": runs}, indent=2) + "\n")


@pytest.fixture
def report():
    """Write a named result table to benchmarks/results/<name>.txt and stdout.

    Each benchmark regenerates a paper table/figure; the text artifact
    survives pytest's output capture so EXPERIMENTS.md can quote it.
    """

    def _report(name: str, lines) -> None:
        RESULTS_DIR.mkdir(exist_ok=True)
        text = "\n".join(str(line) for line in lines) + "\n"
        (RESULTS_DIR / f"{name}.txt").write_text(text)
        print(f"\n=== {name} ===\n{text}")

    return _report


def run_once(benchmark, fn, *args, **kwargs):
    """Time a heavy experiment exactly once (training runs are not
    repeatable at benchmark granularity)."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
