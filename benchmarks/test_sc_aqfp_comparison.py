"""SC-AQFP vs SupeRBNN stream-length comparison (paper Sec. 2.3).

The paper's framing: pure stochastic computing (SC-AQFP [13]) needs
very long bit-streams (256-2048) because *every* value carries SC
quantization noise, while SupeRBNN only uses SC for inter-crossbar
accumulation and works at L = 16-32. This bench runs both paradigms on
the same trained weights and compares how much stream each needs.
"""

import numpy as np

from conftest import run_once

from repro.baselines.sc_aqfp import sc_aqfp_length_sweep
from repro.core.coopt import saturation_length
from repro.experiments.common import trained_mlp, training_gray_zone
from repro.hardware.config import HardwareConfig
from repro.mapping.compiler import compile_model
from repro.mapping.executor import evaluate_accuracy

LENGTHS = (2, 4, 8, 16, 32, 64, 256, 1024)


def _comparison():
    hardware = HardwareConfig(
        crossbar_size=16, gray_zone_ua=training_gray_zone(16), window_bits=16
    )
    model, _, test, software_acc = trained_mlp(hardware, epochs=12)
    images, labels = test.images[:150], test.labels[:150]

    pure = sc_aqfp_length_sweep(
        model, images, labels, lengths=LENGTHS, seed=0
    )

    deploy_gz = training_gray_zone(16, dvin_target=8.0)
    hybrid = []
    for length in LENGTHS:
        network = compile_model(
            model, hardware.with_(gray_zone_ua=deploy_gz, window_bits=length)
        )
        hybrid.append(
            {
                "stream_length": length,
                "accuracy": evaluate_accuracy(network, images, labels),
            }
        )
    return {
        "software_accuracy": software_acc,
        "pure_sc": pure,
        "superbnn": hybrid,
        "pure_sc_saturation": saturation_length(
            [{"window_bits": r["stream_length"], "accuracy": r["accuracy"]} for r in pure],
            tolerance=0.03,
        ),
        "superbnn_saturation": saturation_length(
            [
                {"window_bits": r["stream_length"], "accuracy": r["accuracy"]}
                for r in hybrid
            ],
            tolerance=0.03,
        ),
    }


def test_sc_aqfp_vs_superbnn_stream_length(benchmark, report):
    result = run_once(benchmark, _comparison)

    lines = [f"{'L':>6} {'pure SC':>9} {'SupeRBNN':>9}"]
    for p, h in zip(result["pure_sc"], result["superbnn"]):
        lines.append(
            f"{p['stream_length']:>6d} {p['accuracy']:>9.3f} {h['accuracy']:>9.3f}"
        )
    lines.append(
        f"saturation (within 3%): pure SC L={result['pure_sc_saturation']}, "
        f"SupeRBNN L={result['superbnn_saturation']}"
    )
    lines.append("paper Sec. 2.3: SC-AQFP needs 256-2048 bits; SupeRBNN 16-32")
    report("sc_aqfp_comparison", lines)

    # Pure SC needs a longer stream to saturate than the hybrid.
    assert result["pure_sc_saturation"] >= result["superbnn_saturation"]
    # The hybrid is already usable at L <= 32 (the paper's regime).
    superbnn = {r["stream_length"]: r["accuracy"] for r in result["superbnn"]}
    best_hybrid = max(superbnn.values())
    assert superbnn[32] >= best_hybrid - 0.05
    # Pure SC at tiny L collapses hard relative to its own asymptote.
    pure = {r["stream_length"]: r["accuracy"] for r in result["pure_sc"]}
    assert pure[2] < max(pure.values()) - 0.1
