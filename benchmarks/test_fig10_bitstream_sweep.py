"""Fig. 10 — accuracy vs SC bit-stream length for several crossbar sizes.

Shape targets (paper Sec. 6.3): accuracy rises with L and saturates by
L = 16-32; pushing past 32 buys nothing.
"""

from conftest import run_once

from repro.experiments.fig10 import bitstream_length_sweep

CROSSBAR_SIZES = (8, 16, 36, 72)
LENGTHS = (1, 2, 4, 8, 16, 32, 64)


def test_fig10_bitstream_length_sweep(benchmark, report):
    # Averaged stochastic evaluations + a saturation tolerance with
    # ~2 sigma of sampling headroom: one pass over the eval set is far
    # too noisy to anchor a 3%-of-final saturation criterion on.
    result = run_once(
        benchmark,
        bitstream_length_sweep,
        crossbar_sizes=CROSSBAR_SIZES,
        lengths=LENGTHS,
        epochs=12,
        n_eval=400,
        n_repeats=4,
        saturation_tolerance=0.04,
    )

    header = f"{'Cs':>5} |" + "".join(f" L={length:<4d}" for length in LENGTHS)
    lines = [header, "-" * len(header)]
    for cs in CROSSBAR_SIZES:
        accs = "".join(f" {item['accuracy']:.3f} " for item in result["series"][cs])
        lines.append(f"{cs:>5d} |{accs}")
    lines.append(f"saturation lengths (within 3%): {result['saturation']}")
    lines.append("paper: accuracy stabilizes once L reaches 16-32")
    report("fig10_bitstream_sweep", lines)

    for cs in CROSSBAR_SIZES:
        sweep = {item["window_bits"]: item["accuracy"] for item in result["series"][cs]}
        # Rising-then-flat shape: the long-window end beats single-shot...
        assert sweep[32] >= sweep[1] - 0.02
        # ...and pushing past 32 gains almost nothing. Each point is one
        # stochastic evaluation of n_eval images (sigma ~ 0.025), so the
        # bound leaves ~2 sigma of sampling headroom on the difference.
        assert sweep[64] - sweep[32] < 0.07
        # Saturation by 32 (paper: 16-32).
        assert result["saturation"][cs] <= 32
