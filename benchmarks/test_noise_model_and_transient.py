"""Extension benches: noise-model comparison + transient Eq. 1 validation.

* Paper Sec. 3 argues AQFP randomness is *data-dependent*, unlike
  ReRAM/PCM weight noise which is fixed per mapping — so weight-noise
  training cannot substitute for randomized-aware training. The first
  bench measures both on the same stochastic hardware.
* Paper Sec. 6.1 verifies circuits with a thermal-noise Jsim; the second
  bench runs our Langevin transient substrate and checks that Eq. 1's
  erf law *emerges* from the device dynamics.
"""

from conftest import run_once

from repro.core.noise_baselines import weight_noise_comparison
from repro.device.transient import TransientBuffer


def test_noise_model_comparison(benchmark, report):
    result = run_once(benchmark, weight_noise_comparison, epochs=12)

    lines = [f"{'training noise':<18} {'software':>9} {'hardware':>9} {'drop':>7}"]
    for label, row in result.items():
        lines.append(
            f"{label:<18} {row['software_accuracy']:>9.3f} "
            f"{row['hardware_accuracy']:>9.3f} {row['degradation']:>7.3f}"
        )
    lines.append(
        "paper Sec. 3: weight noise is data-independent and cannot model "
        "the AQFP device; the AQFP-aware model should degrade less."
    )
    report("ablation_noise_model", lines)

    aqfp = result["aqfp_randomized"]
    wn = result["weight_noise"]
    assert aqfp["software_accuracy"] > 0.5
    assert wn["software_accuracy"] > 0.5
    # The data-dependent noise model transfers better to hardware.
    assert aqfp["degradation"] <= wn["degradation"] + 0.03
    assert aqfp["hardware_accuracy"] > 0.5


def _transient_validation():
    buf = TransientBuffer(noise_temperature=0.08, seed=0)
    gray_zone, threshold = buf.fit_gray_zone(n_trials=3000)
    residual = buf.erf_fit_residual(n_trials=3000)
    cold = TransientBuffer(noise_temperature=0.02, seed=1)
    warm = TransientBuffer(noise_temperature=0.3, seed=1)
    gz_cold, _ = cold.fit_gray_zone(bias_range=1.0, n_trials=2000)
    gz_warm, _ = warm.fit_gray_zone(bias_range=1.0, n_trials=2000)
    return {
        "gray_zone": gray_zone,
        "threshold": threshold,
        "residual": residual,
        "gz_cold": gz_cold,
        "gz_warm": gz_warm,
    }


def test_transient_erf_validation(benchmark, report):
    result = run_once(benchmark, _transient_validation)

    lines = [
        f"fitted gray zone: {result['gray_zone']:.3f} (device units), "
        f"threshold: {result['threshold']:+.4f}",
        f"max |P_sim - P_erf| over the sweep: {result['residual']:.3f}",
        f"gray zone at kT=0.02: {result['gz_cold']:.3f}; "
        f"at kT=0.30: {result['gz_warm']:.3f}",
        "Eq. 1's erf law and the thermal gray-zone growth both emerge "
        "from the Langevin double-well dynamics.",
    ]
    report("transient_validation", lines)

    assert result["residual"] < 0.05  # erf describes the physics
    assert abs(result["threshold"]) < 0.05  # symmetric device
    assert result["gz_warm"] > 2.0 * result["gz_cold"]  # thermal growth
