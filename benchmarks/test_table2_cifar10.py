"""Table 2 — CIFAR-10: accuracy vs energy efficiency vs baselines.

Shape targets: SupeRBNN's operating points trade accuracy for 1-2 orders
of TOPS/W; every operating point sits orders of magnitude above the
published CMOS/ReRAM/MRAM baselines (paper: 7.8e4x over IMB).
"""

from conftest import run_once

from repro.experiments.table2 import cifar10_comparison


def test_table2_cifar10_comparison(benchmark, report):
    result = run_once(benchmark, cifar10_comparison, epochs=20, n_eval=128)

    lines = [
        f"{'design':<28} {'acc %':>7} {'TOPS/W':>10} {'cooled':>9} "
        f"{'mW':>9} {'img/ms':>8}"
    ]
    for row in result["ours"]:
        lines.append(
            f"{row['design']:<28} {row['accuracy_pct']:>7.1f} "
            f"{row['tops_per_w']:>10.3g} {row['tops_per_w_cooled']:>9.3g} "
            f"{row['power_mw']:>9.2g} {row['throughput_images_per_ms']:>8.1f}"
        )
    for row in result["baselines"]:
        tops = row["tops_per_w"]
        lines.append(f"{row['design']:<28} {row['accuracy_pct']:>7.1f} {tops:>10.3g}")
    lines.append(f"software accuracy: {result['software_accuracy_pct']:.1f}%")
    lines.append("paper SupeRBNN rows: " + ", ".join(
        f"{r['accuracy_pct' if 'accuracy_pct' in r else 'accuracy']}%@{r['tops_per_w']:.2g}"
        for r in result["paper_rows"]
    ))
    report("table2_cifar10", lines)

    ours = result["ours"]
    best_acc_row = max(ours, key=lambda r: r["accuracy_pct"])
    fastest_row = max(ours, key=lambda r: r["tops_per_w"])
    imb = next(b for b in result["baselines"] if b["design"] == "IMB")

    # Paper's efficiency band: 1.9e5 .. 6.8e6 TOPS/W across points.
    assert 1e4 < best_acc_row["tops_per_w"] < 1e7
    assert fastest_row["tops_per_w"] > 5e5
    # Orders of magnitude over ReRAM (paper claims 7.8e4x).
    assert best_acc_row["tops_per_w"] / imb["tops_per_w"] > 1e2
    # Accuracy/efficiency trade: the fastest point gives up accuracy.
    assert fastest_row["accuracy_pct"] <= best_acc_row["accuracy_pct"] + 1.0
    # Models actually learned.
    assert best_acc_row["accuracy_pct"] > 40.0
