"""Sec. 4.4 — n-phase clocking JJ reduction + 3-phase memory saving.

Shape targets: reductions grow with the phase count, reach the >= 20%
band at 8 phases on the buffer-heavy circuits (paper: >= 20.8% at 8,
27.3% at 16), and the BCM saves exactly 20% from the 3-phase clock.
"""

from conftest import run_once

from repro.experiments.clocking import best_reduction, clocking_optimization_report


def test_clocking_scheme_optimization(benchmark, report):
    result = run_once(benchmark, clocking_optimization_report)

    lines = [f"{'circuit':<15} {'4-phase JJ':>11} {'8-phase':>9} {'16-phase':>9}"]
    for name, circuit in result["circuits"].items():
        lines.append(
            f"{name:<15} {circuit[4]['total_jj']:>11.0f} "
            f"{circuit[8]['reduction_vs_4phase'] * 100:>8.1f}% "
            f"{circuit[16]['reduction_vs_4phase'] * 100:>8.1f}%"
        )
    lines.append(
        f"best reduction: {best_reduction(result, 8) * 100:.1f}% @ 8 phases, "
        f"{best_reduction(result, 16) * 100:.1f}% @ 16 phases "
        "(paper: >= 20.8% and 27.3%)"
    )
    lines.append(
        f"BCM 3-phase memory saving: {result['memory_reduction'] * 100:.1f}% "
        "(paper: 20%)"
    )
    report("clocking_ablation", lines)

    assert best_reduction(result, 8) > 0.18
    assert best_reduction(result, 16) > best_reduction(result, 8)
    assert abs(result["memory_reduction"] - 0.20) < 1e-9
    for circuit in result["circuits"].values():
        assert circuit[8]["reduction_vs_4phase"] >= 0
        assert circuit[16]["reduction_vs_4phase"] >= circuit[8]["reduction_vs_4phase"]
