"""Table 1 — latency / #JJs / energy per crossbar size (exact rows)."""

from conftest import run_once

from repro.experiments.table1 import PAPER_TABLE1, crossbar_hardware_table


def test_table1_crossbar_costs(benchmark, report):
    rows = run_once(benchmark, crossbar_hardware_table)

    lines = [
        f"{'area':>9} {'latency(ps)':>12} {'#JJs':>8} {'energy(aJ)':>11}"
        f" | paper: {'lat':>5} {'#JJs':>8} {'aJ':>8}"
    ]
    for row in rows:
        lines.append(
            f"{row['crossbar_area']:>9} {row['latency_ps']:>12.0f} "
            f"{row['jj_count']:>8d} {row['energy_aj']:>11.2f}"
            f" | {row['paper_latency_ps']:>12.0f} {row['paper_jj_count']:>8d} "
            f"{row['paper_energy_aj']:>8.2f}"
        )
    report("table1_crossbar_costs", lines)

    for row in rows:
        paper = PAPER_TABLE1[row["size"]]
        assert row["latency_ps"] == paper["latency_ps"]
        assert row["jj_count"] == paper["jj_count"]
        assert abs(row["energy_aj"] - paper["energy_aj"]) < 1e-6
