"""Fig. 11 — accuracy over the (gray-zone, crossbar-size) plane at L = 1.

Shape targets: accuracy depends on *both* knobs, non-monotonically, with
multiple local peaks (the motivation for the AME co-optimization).
"""

import numpy as np

from conftest import run_once

from repro.experiments.fig11 import accuracy_surface

GRAY_ZONES = (0.6, 2.4, 10.0, 40.0)
SIZES = (8, 16, 36, 72)


def test_fig11_accuracy_surface(benchmark, report):
    result = run_once(
        benchmark,
        accuracy_surface,
        gray_zones_ua=GRAY_ZONES,
        crossbar_sizes=SIZES,
        window_bits=1,
        epochs=12,
        n_eval=200,
    )

    by_key = {
        (cell["crossbar_size"], cell["gray_zone_ua"]): cell for cell in result["grid"]
    }
    corner = "Cs\\dIin"
    header = f"{corner:>8} |" + "".join(f" {gz:>7.1f}" for gz in GRAY_ZONES)
    lines = [header, "-" * len(header)]
    for cs in SIZES:
        row = "".join(f" {by_key[(cs, gz)]['accuracy']:>7.3f}" for gz in GRAY_ZONES)
        lines.append(f"{cs:>8d} |{row}")
    lines.append(f"local accuracy peaks on the grid: {result['peaks']}")
    lines.append("paper: multiple peaks; accuracy tied to both dIin and Cs")
    report("fig11_accuracy_surface", lines)

    accuracies = np.array([cell["accuracy"] for cell in result["grid"]])
    # The surface is far from flat: configuration choice matters.
    assert accuracies.max() - accuracies.min() > 0.1
    # The paper's qualitative claim: more than one local peak.
    assert result["peaks"] >= 2
    # Every configuration stays above chance (trained models).
    assert accuracies.min() > 0.1
