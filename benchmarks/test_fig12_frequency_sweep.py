"""Fig. 12 — energy efficiency vs frequency: AQFP vs (Cryo-)CMOS.

Shape targets (paper Sec. 6.5): ~4 orders of magnitude over Cryo-CMOS on
device power alone, 2-3 orders once both coolers are charged; AQFP
efficiency improves toward lower clocks (adiabatic scaling).
"""

from conftest import run_once

from repro.experiments.fig12 import efficiency_frequency_sweep


def test_fig12_efficiency_vs_frequency(benchmark, report):
    result = run_once(benchmark, efficiency_frequency_sweep, epochs=8)

    lines = [
        f"{'GHz':>6} {'AQFP':>12} {'AQFP+cool':>12} {'CryoCMOS*':>12} "
        f"{'CryoCMOS*+cool':>15}"
    ]
    for row in result["rows"]:
        best_cryo = max(
            v
            for k, v in row.items()
            if k.startswith("cryo_") and not k.endswith("_cooled")
        )
        best_cooled = max(
            v for k, v in row.items() if k.startswith("cryo_") and k.endswith("_cooled")
        )
        lines.append(
            f"{row['frequency_ghz']:>6.1f} {row['aqfp']:>12.3g} "
            f"{row['aqfp_cooled']:>12.3g} {best_cryo:>12.3g} {best_cooled:>15.3g}"
        )
    lines.append("(* best Cryo-CMOS series at each frequency; TOPS/W)")
    lines.append(
        f"gap at 1 GHz: {result['gap_device_orders']:.1f} orders device-only, "
        f"{result['gap_cooled_orders']:.1f} orders with cooling "
        "(paper: ~4 and 2-3)"
    )
    report("fig12_frequency_sweep", lines)

    assert 2.5 < result["gap_device_orders"] < 5.5
    assert 1.5 < result["gap_cooled_orders"] < 4.0
    aqfp = [row["aqfp"] for row in result["rows"]]
    assert all(a > b for a, b in zip(aqfp, aqfp[1:]))  # adiabatic slope
