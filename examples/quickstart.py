#!/usr/bin/env python
"""Quickstart: train a randomized BNN, deploy it on the AQFP accelerator.

This walks the full SupeRBNN pipeline on a small MLP:

1. generate a synthetic MNIST-like task,
2. train with the AQFP randomized-aware recipe (erf backward, ReCU,
   warmup + cosine LR),
3. compile to hardware — BN matching folds every BatchNorm into
   per-column threshold currents, filters are tiled over crossbars,
4. run hardware-faithful inference (stochastic buffers + SC
   accumulation) and compare against the ideal noise-free device,
5. report the hardware cost (JJs, power, TOPS/W).

Run:  python examples/quickstart.py
"""

from repro import (
    AcceleratorCostModel,
    HardwareConfig,
    Mlp,
    Trainer,
    TrainingConfig,
    compile_model,
    evaluate_accuracy,
    network_workloads,
)
from repro.data import DataLoader, make_mnist_like


def main() -> None:
    # 1. Data ----------------------------------------------------------
    dataset = make_mnist_like(n_samples=2000, seed=0)
    train, test = dataset.split(train_fraction=0.8, seed=1)
    print(f"dataset: {len(train)} train / {len(test)} test, "
          f"images {train.image_shape}")

    # 2. Hardware-aware training ----------------------------------------
    hardware = HardwareConfig(crossbar_size=16, gray_zone_ua=10.0, window_bits=16)
    print(f"hardware: Cs={hardware.crossbar_size}, "
          f"I1={hardware.unit_current_ua:.2f} uA, "
          f"dVin={hardware.value_gray_zone:.3f}")

    model = Mlp(in_features=144, hidden=(64, 32), hardware=hardware, seed=0)
    trainer = Trainer(model, TrainingConfig(epochs=20, warmup_epochs=3))
    trainer.fit(
        DataLoader(train, batch_size=64, seed=2),
        DataLoader(test, batch_size=256, shuffle=False),
        verbose=True,
    )
    print(f"software accuracy (ideal device): {trainer.best_test_accuracy:.3f}")

    # 3. Compile: BN matching + tiling ----------------------------------
    network = compile_model(model)
    for i, layer in enumerate(network.tiled_layers):
        print(f"layer {i}: {layer}")

    # 4. Hardware-faithful inference ------------------------------------
    acc_ideal = evaluate_accuracy(network, test.images, test.labels, mode="ideal")
    acc_hw = evaluate_accuracy(network, test.images, test.labels, mode="stochastic")
    print(f"hardware accuracy: ideal={acc_ideal:.3f}  stochastic={acc_hw:.3f}")

    # 5. Cost report -----------------------------------------------------
    cost = AcceleratorCostModel(hardware, network_workloads(network, train.image_shape))
    summary = cost.summary()
    print(
        f"cost: power={summary['power_mw'] * 1e3:.2f} uW, "
        f"throughput={summary['throughput_images_per_ms']:.1f} img/ms, "
        f"efficiency={summary['tops_per_w']:.3g} TOPS/W "
        f"({summary['tops_per_w_cooled']:.3g} with 400x cooling)"
    )


if __name__ == "__main__":
    main()
