#!/usr/bin/env python
"""Quickstart: train a randomized BNN, serve it through the Engine API.

This walks the full SupeRBNN pipeline on a small MLP:

1. generate a synthetic MNIST-like task,
2. train with the AQFP randomized-aware recipe (erf backward, ReCU,
   warmup + cosine LR),
3. build an inference ``Engine`` — compilation (BN matching + tiling)
   happens inside ``Engine.from_model``,
4. open a ``Session`` (owns the RNG state, micro-batches requests) and
   run the same batched request through several execution backends:
   the noise-free ``ideal`` reference, the hardware-default
   ``stochastic`` dispatch, and the RNG-batched
   ``stochastic-fused-batched`` fast path,
5. read the structured ``InferenceResult`` (accuracy, wall time,
   sampled windows) and the hardware cost model (JJs, power, TOPS/W).

Run:  python examples/quickstart.py
"""

from repro import HardwareConfig, Mlp, Trainer, TrainingConfig
from repro.api import Engine
from repro.data import DataLoader, make_mnist_like


def main() -> None:
    # 1. Data ----------------------------------------------------------
    dataset = make_mnist_like(n_samples=2000, seed=0)
    train, test = dataset.split(train_fraction=0.8, seed=1)
    print(f"dataset: {len(train)} train / {len(test)} test, "
          f"images {train.image_shape}")

    # 2. Hardware-aware training ----------------------------------------
    hardware = HardwareConfig(crossbar_size=16, gray_zone_ua=10.0, window_bits=16)
    print(f"hardware: Cs={hardware.crossbar_size}, "
          f"I1={hardware.unit_current_ua:.2f} uA, "
          f"dVin={hardware.value_gray_zone:.3f}")

    model = Mlp(in_features=144, hidden=(64, 32), hardware=hardware, seed=0)
    trainer = Trainer(model, TrainingConfig(epochs=20, warmup_epochs=3))
    trainer.fit(
        DataLoader(train, batch_size=64, seed=2),
        DataLoader(test, batch_size=256, shuffle=False),
        verbose=True,
    )
    print(f"software accuracy (ideal device): {trainer.best_test_accuracy:.3f}")

    # 3. Engine: compile + wrap -----------------------------------------
    engine = Engine.from_model(model)
    for i, layer in enumerate(engine.tiled_layers):
        print(f"layer {i}: {layer}")

    # 4. One session, several execution backends ------------------------
    session = engine.session(seed=0)
    print(f"\n{'backend':>26} {'accuracy':>9} {'windows':>9} {'time':>8}")
    for backend in ("ideal", "stochastic", "stochastic-fused-batched"):
        result = session.run(test.images, labels=test.labels, backend=backend)
        print(
            f"{backend:>26} {result.accuracy:>9.3f} "
            f"{result.total_windows:>9d} {result.wall_time_s:>7.3f}s"
        )

    # 5. Cost report -----------------------------------------------------
    summary = engine.cost_model(train.image_shape).summary()
    print(
        f"\ncost: power={summary['power_mw'] * 1e3:.2f} uW, "
        f"throughput={summary['throughput_images_per_ms']:.1f} img/ms, "
        f"efficiency={summary['tops_per_w']:.3g} TOPS/W "
        f"({summary['tops_per_w_cooled']:.3g} with 400x cooling)"
    )


if __name__ == "__main__":
    main()
