#!/usr/bin/env python
"""Extension study: what does a warmer cryostat cost in accuracy?

The paper operates at 4.2 K where thermal fluctuations set a 2.4 uA
gray zone. Following its cited comparator physics (Walls et al. [73]),
the gray zone scales as T^(2/3) above the quantum crossover and
saturates below it. This script sweeps the operating temperature,
derives the gray zone from the device model, and measures deployed
accuracy on the hardware executor.

Run:  python examples/temperature_study.py
"""

from repro.device.josephson import gray_zone_width
from repro.experiments.temperature import temperature_sweep


def main() -> None:
    print("thermal gray-zone law (width at 4.2 K = 2.4 uA):")
    for t in (0.05, 0.3, 1.0, 4.2, 20.0, 77.0):
        print(f"  T = {t:6.2f} K -> dIin = {gray_zone_width(t):6.3f} uA")

    print("\ndeployed accuracy vs operating temperature:")
    result = temperature_sweep()
    print(f"  software reference: {result['reference_accuracy']:.3f}")
    print(f"  {'T (K)':>7} {'dIin (uA)':>10} {'accuracy':>9}")
    for row in result["rows"]:
        print(
            f"  {row['temperature_k']:>7.1f} {row['gray_zone_ua']:>10.2f} "
            f"{row['accuracy']:>9.3f}"
        )
    print(
        "\nthe quantum floor (below ~0.3 K) means cooling further buys "
        "nothing; warming raises the gray zone and eventually drowns the "
        "dithering regime the SC window relies on."
    )


if __name__ == "__main__":
    main()
