#!/usr/bin/env python
"""Algorithm/hardware co-optimization (paper Sec. 5.4).

Explores the hardware design space the way the paper does:

* computes the average mismatch error (AME, Eq. 18) over a
  (gray-zone x crossbar-size) grid,
* constrains crossbar size by a per-cycle energy budget (Table 1),
* picks the AME-minimizing configuration,
* then validates the choice by deploying a trained model across the
  grid and comparing hardware accuracy against the AME landscape.

Run:  python examples/design_space_exploration.py
"""

import numpy as np

from repro import HardwareConfig
from repro.api import Engine
from repro.core.coopt import average_mismatch_error, optimize_hardware_config
from repro.experiments.common import trained_mlp
from repro.hardware.cost import CrossbarCost


def main() -> None:
    gray_zones = [0.6, 1.2, 2.4, 5.0, 10.0, 20.0]
    sizes = [8, 16, 36, 72]

    # --- AME landscape under an energy constraint -----------------------
    budget_aj = 350.0  # excludes 144x144 (1278 aJ) but allows 72x72
    print(f"energy budget: {budget_aj} aJ/cycle")
    for cs in sizes + [144]:
        cost = CrossbarCost(cs)
        tag = "ok" if cost.energy_per_cycle_aj <= budget_aj else "EXCLUDED"
        print(f"  Cs={cs:4d}: {cost.energy_per_cycle_aj:8.2f} aJ  [{tag}]")

    result = optimize_hardware_config(
        gray_zones, sizes + [144], max_energy_per_cycle_aj=budget_aj
    )
    best = result.best_config
    print(
        f"\nAME-optimal config: Cs={best.crossbar_size}, "
        f"dIin={best.gray_zone_ua} uA (AME={result.best_ame:.4f})"
    )

    print("\nAME grid (rows = dIin, cols = Cs):")
    header = "dIin\\Cs " + "".join(f"{cs:>10d}" for cs in sizes)
    print(header)
    for gz in gray_zones:
        row = [average_mismatch_error(cs, gz) for cs in sizes]
        print(f"{gz:7.1f} " + "".join(f"{v:10.4f}" for v in row))

    # --- validate with deployed accuracy --------------------------------
    print("\nhardware accuracy at selected grid points (L=8):")
    train_hw = HardwareConfig(crossbar_size=16, window_bits=16)
    model, _, test, sw_acc = trained_mlp(train_hw, epochs=15)
    images, labels = test.images[:200], test.labels[:200]
    print(f"software reference accuracy: {sw_acc:.3f}")
    for gz in (0.6, 2.4, 10.0):
        for cs in (8, 16, 72):
            deploy = train_hw.with_(gray_zone_ua=gz, crossbar_size=cs, window_bits=8)
            acc = Engine.from_model(model, deploy).evaluate(images, labels)
            ame = average_mismatch_error(cs, gz)
            print(f"  dIin={gz:5.1f} Cs={cs:3d}: acc={acc:.3f}  (AME={ame:.4f})")


if __name__ == "__main__":
    main()
