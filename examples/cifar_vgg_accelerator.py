#!/usr/bin/env python
"""End-to-end CIFAR workload: VGG-small on the AQFP accelerator.

The paper's flagship evaluation (Table 2): train the binarized VGG-small
with randomized-aware cells, deploy on tiled crossbars, and trade
accuracy against energy efficiency by sweeping the SC window length.

Run:  python examples/cifar_vgg_accelerator.py        (~3-4 minutes)
      python examples/cifar_vgg_accelerator.py --fast (~1 minute)
"""

import argparse

from repro import HardwareConfig, Trainer, TrainingConfig, VggSmall
from repro.api import Engine
from repro.data import DataLoader, make_cifar_like


def main(fast: bool = False) -> None:
    epochs = 8 if fast else 25
    dataset = make_cifar_like(n_samples=1200, seed=3)
    train, test = dataset.split(0.8, seed=1)

    hardware = HardwareConfig(crossbar_size=72, gray_zone_ua=10.0, window_bits=16)
    model = VggSmall(image_size=16, hardware=hardware, seed=0)
    trainer = Trainer(model, TrainingConfig(epochs=epochs, warmup_epochs=3))
    trainer.fit(
        DataLoader(train, 64, seed=2),
        DataLoader(test, 256, shuffle=False),
        verbose=True,
    )
    print(f"\nsoftware accuracy: {trainer.best_test_accuracy:.3f}")

    images, labels = test.images[:96], test.labels[:96]
    print("\noperating points (accuracy vs efficiency, Table 2 style):")
    print(f"{'L':>4} {'accuracy':>9} {'TOPS/W':>12} {'cooled':>10} "
          f"{'power uW':>9} {'img/ms':>8}")
    for window in (32, 16, 4, 1):
        engine = (
            Engine.builder()
            .model(model)
            .hardware(window_bits=window)
            .backend("stochastic")
            .build()
        )
        acc = engine.evaluate(images, labels)
        s = engine.cost_model(train.image_shape).summary()
        print(
            f"{window:>4} {acc:>9.3f} {s['tops_per_w']:>12.3g} "
            f"{s['tops_per_w_cooled']:>10.3g} {s['power_mw'] * 1e3:>9.2f} "
            f"{s['throughput_images_per_ms']:>8.1f}"
        )


if __name__ == "__main__":
    parser = argparse.ArgumentParser()
    parser.add_argument("--fast", action="store_true", help="train fewer epochs")
    main(parser.parse_args().fast)
