#!/usr/bin/env python
"""Stochastic computing on AQFP randomness (paper Secs. 2.3, 4.3).

Demonstrates the substrate pieces in isolation:

1. the AQFP buffer as a free stochastic-number generator — its output
   probability tracks Eq. 1, so observing it over a window yields a
   bipolar SN of the input current,
2. SC arithmetic (XNOR multiply is exact in expectation),
3. the SC accumulation module merging multiple crossbar tiles, showing
   how the counting + comparator decision converges to the true sign as
   the window grows,
4. the gate-level APC netlist evaluated against its functional model.

Run:  python examples/stochastic_computing_demo.py
"""

import numpy as np

from repro.circuits.apc import ApproximateParallelCounter, build_apc_netlist
from repro.device.aqfp import AqfpBuffer
from repro.sc.accumulate import ScAccumulationModule
from repro.sc.arithmetic import sc_multiply_bipolar
from repro.sc.encoding import bipolar_decode, bipolar_encode


def main() -> None:
    rng = np.random.default_rng(0)

    # 1. AQFP buffer as SN generator -------------------------------------
    buffer = AqfpBuffer(gray_zone_ua=2.4, seed=1)
    print("AQFP buffer as a stochastic-number generator (L=256):")
    for current in (-2.0, -0.5, 0.0, 0.5, 2.0):
        window = buffer.sample_window(np.array(current), window_bits=256)
        print(
            f"  Iin={current:+.1f} uA: P(1)={buffer.probability_of_one(current):.3f} "
            f"observed={float((window > 0).mean()):.3f} "
            f"decoded value={float(window.mean()):+.3f}"
        )

    # 2. SC multiplication -------------------------------------------------
    print("\nbipolar SC multiply (XNOR), L=1024:")
    for x, y in ((0.5, 0.5), (-0.6, 0.4), (0.9, -0.9)):
        sx = bipolar_encode(x, 1024, seed=rng)
        sy = bipolar_encode(y, 1024, seed=rng)
        product = bipolar_decode(sc_multiply_bipolar(sx, sy))
        print(f"  {x:+.2f} * {y:+.2f} = {x * y:+.3f}  SC: {float(product):+.3f}")

    # 3. SC accumulation across crossbar tiles ----------------------------
    print("\nSC accumulation of 4 tile outputs (true sum = +2):")
    partials = np.array([3.0, -2.0, 4.0, -3.0])  # tile pre-activations
    tile_buffer = AqfpBuffer(gray_zone_ua=2.4, seed=2)
    # Deep in the gray zone (0.2 uA per unit) the single-shot decision is
    # noisy; the window average recovers the true sign.
    probabilities = tile_buffer.probability_of_one(partials * 0.2)
    for window in (1, 4, 16, 64, 256):
        module = ScAccumulationModule(n_crossbars=4, window_bits=window)
        trials = []
        for _ in range(200):
            u = rng.random((4, window))
            streams = np.where(u < probabilities[:, None], 1.0, -1.0)
            trials.append(float(module.accumulate(streams)))
        agreement = float(np.mean(np.array(trials) > 0))
        print(f"  L={window:4d}: P(output=+1) = {agreement:.2f}")

    # 4. gate-level APC ----------------------------------------------------
    print("\ngate-level APC vs functional counter (16 inputs):")
    apc = ApproximateParallelCounter(approximate_layers=0)
    netlist = build_apc_netlist(16, approximate_layers=0)
    bits = (rng.random(16) < 0.6).astype(int)
    values = netlist.evaluate({f"in_{i}": int(b) for i, b in enumerate(bits)})
    gate_count = sum(values[o] << k for k, o in enumerate(netlist.outputs))
    print(f"  input ones={bits.sum()}  netlist count={gate_count}  "
          f"functional={int(apc.count(bits))}")
    print(f"  netlist: {len(netlist)} gates, {netlist.logic_jj_count()} JJs, "
          f"depth {netlist.depth()} stages")


if __name__ == "__main__":
    main()
