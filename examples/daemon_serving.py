#!/usr/bin/env python
"""Queued serving daemon walkthrough: submission, coalescing, shutdown.

The runtime's :class:`~repro.runtime.daemon.ServingDaemon` is the
long-lived successor to the batch-at-once ``Serving`` front-end: a
bounded request queue, one consumer loop, and a deadline-based
coalescing window. Requests that arrive within the window are merged
into one execution *wave* — concatenated activations, appended shard
plans — while every request keeps its own shard boundaries and seeds,
so coalesced logits are **bit-identical** to running the same requests
uncoalesced through a serial ``Session``. This example:

1. trains a small randomized MLP (same recipe as ``quickstart.py``),
2. submits a burst of requests to a seeded daemon and shows the wave
   statistics (how many requests each wave coalesced),
3. verifies the coalesced logits equal ``Session.run_many`` bit for bit,
4. shows failure isolation (a malformed request fails only its own
   future) and graceful shutdown with requests still queued.

Run:  python examples/daemon_serving.py
"""

import numpy as np

from repro import HardwareConfig, Mlp, Trainer, TrainingConfig
from repro.api import Engine, ServingDaemon, Session
from repro.data import DataLoader, make_mnist_like


def main() -> None:
    # 1. Train a small reference model --------------------------------
    dataset = make_mnist_like(n_samples=1500, seed=0)
    train, test = dataset.split(train_fraction=0.8, seed=1)
    hardware = HardwareConfig(crossbar_size=16, gray_zone_ua=10.0, window_bits=8)
    model = Mlp(in_features=144, hidden=(64, 32), hardware=hardware, seed=0)
    Trainer(model, TrainingConfig(epochs=10, warmup_epochs=2)).fit(
        DataLoader(train, batch_size=64, seed=2)
    )
    engine = Engine.from_model(model, micro_batch=32)
    print(f"engine: {engine}")

    # 2. A burst of queued requests, coalesced into waves -------------
    rng = np.random.default_rng(0)
    requests, labels = [], []
    for _ in range(8):
        idx = rng.integers(0, len(test.images), size=48)
        requests.append(test.images[idx])
        labels.append(test.labels[idx])

    with ServingDaemon(
        engine, seed=7, coalesce_window_s=0.02, max_queue=32
    ) as daemon:
        futures = [
            daemon.submit(request, labels=request_labels)
            for request, request_labels in zip(requests, labels)
        ]
        results = [future.result() for future in futures]
        stats = daemon.stats
    print(
        f"daemon: {stats.completed} requests in {stats.waves} waves "
        f"({stats.coalesced_requests} coalesced), "
        f"accuracy={np.mean([r.accuracy for r in results]):.3f}"
    )

    # 3. Coalescing is bit-identical to a serial session --------------
    reference = Session(engine, seed=7).run_many(requests, labels=labels)
    identical = all(
        np.array_equal(a.logits, b.logits) for a, b in zip(results, reference)
    )
    print(f"coalesced == uncoalesced serial session: {identical}")

    # 4. Failure isolation + graceful shutdown ------------------------
    daemon = ServingDaemon(engine, seed=7, coalesce_window_s=0.02)
    good = daemon.submit(requests[0])
    bad = daemon.submit(np.full((4, 9), 0.5))  # wrong fan-in: this one fails
    tail = daemon.submit(requests[1])
    daemon.close(drain=True)  # finishes everything still queued
    print(f"good request:  {good.result()!r}")
    try:
        bad.result()
    except Exception as exc:  # noqa: BLE001 - demonstration
        print(f"bad request:   isolated failure: {type(exc).__name__}: {exc}")
    print(f"tail request:  {tail.result()!r} (drained on close)")


if __name__ == "__main__":
    main()
