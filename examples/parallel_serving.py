#!/usr/bin/env python
"""Parallel execution & concurrent serving walkthrough.

The stochastic crossbar inference is embarrassingly parallel — every
micro-batch shard is an independent sample-and-count — so the Engine's
shard plan maps straight onto a process pool. This example:

1. trains a small randomized MLP (same recipe as ``quickstart.py``),
2. runs one batched request serially and on the
   ``stochastic-parallel`` backend with several worker counts,
   verifying the logits are **bit-identical** for the same session
   seed (per-shard child seeding makes worker count irrelevant),
3. stands up a ``Serving`` front-end — bounded concurrent requests
   over one shared worker pool — and prints its throughput report.

For the queued, batch-coalescing successor to ``Serving`` (bounded
request queue, deadline windows, per-wave amortization), see
``examples/daemon_serving.py``.

Run:  python examples/parallel_serving.py
"""

import numpy as np

from repro import HardwareConfig, Mlp, Trainer, TrainingConfig
from repro.api import Engine, Serving
from repro.api.parallel import StochasticParallelBackend
from repro.data import DataLoader, make_mnist_like


def main() -> None:
    # 1. Train a small reference model --------------------------------
    dataset = make_mnist_like(n_samples=1500, seed=0)
    train, test = dataset.split(train_fraction=0.8, seed=1)
    hardware = HardwareConfig(crossbar_size=16, gray_zone_ua=10.0, window_bits=8)
    model = Mlp(in_features=144, hidden=(64, 32), hardware=hardware, seed=0)
    Trainer(model, TrainingConfig(epochs=10, warmup_epochs=2)).fit(
        DataLoader(train, batch_size=64, seed=2)
    )
    engine = Engine.from_model(model, micro_batch=32)
    print(f"engine: {engine}")

    # 2. Serial vs parallel: bit-identical for the same seed ----------
    images, labels = test.images, test.labels
    serial = engine.session(seed=7).run(images, labels=labels)
    print(
        f"serial     : {serial.micro_batches} shards, "
        f"accuracy={serial.accuracy:.3f}, {serial.wall_time_s * 1e3:.1f} ms"
    )
    for workers in (1, 2, 4):
        with StochasticParallelBackend(workers=workers) as backend:
            with engine.session(seed=7, backend=backend) as session:
                parallel = session.run(images, labels=labels)
        identical = np.array_equal(parallel.logits, serial.logits)
        print(
            f"parallel x{workers}: {parallel.micro_batches} shards, "
            f"accuracy={parallel.accuracy:.3f}, "
            f"{parallel.wall_time_s * 1e3:.1f} ms, "
            f"bit-identical to serial: {identical}"
        )

    # 3. Concurrent serving over one shared pool ----------------------
    rng = np.random.default_rng(0)
    requests, request_labels = [], []
    for _ in range(8):
        idx = rng.integers(0, len(images), size=48)
        requests.append(images[idx])
        request_labels.append(labels[idx])
    with StochasticParallelBackend(workers=4) as backend:
        with Serving(engine, workers=4, backend=backend, seed=0) as front:
            report = front.serve(requests, labels=request_labels)
    print(f"\nserving: {report}")
    for key, value in report.summary().items():
        print(f"  {key:>14}: {value}")


if __name__ == "__main__":
    main()
