#!/usr/bin/env python
"""Network serving walkthrough: framed wire protocol, asyncio server,
sync + async clients, back-pressure, and bit-identity over TCP.

The network tier (:mod:`repro.net`) puts a real socket boundary in
front of the :class:`~repro.runtime.daemon.ServingDaemon`::

    clients ──frames──▶ asyncio server ──try_submit──▶ router ──▶ replicas
       ▲                                                │ waves
       └── response / PARTIAL / PROGRESS frames ◀───────┘

Every request carries an explicit seed, so a response that crossed the
wire, was coalesced into a wave with strangers, was routed to any of N
replica daemons, and came back on a multiplexed connection — whole or
as streamed row-slices — is still **bit-identical** to
``Session(engine, seed).run(images)`` in-process (the contract
``docs/PROTOCOL.md`` and ``docs/ARCHITECTURE.md`` document). This
example:

1. trains a small randomized MLP (same recipe as ``quickstart.py``),
2. starts the asyncio server on an ephemeral port (background thread),
3. runs blocking-client requests and verifies wire == in-process,
4. multiplexes concurrent requests on one async connection,
5. consumes a **streamed** response: PROGRESS lifecycle markers, then
   contiguous PARTIAL slices reassembled bit-identically,
6. routes over **two replica daemons** with a :class:`DaemonRouter`
   and shows the topology is invisible on the wire,
7. shows policed back-pressure: a rate-limited client sees a retryable
   error frame instead of a hung socket,
8. sweeps offered load with the multi-client generator and prints the
   p50/p95/p99 latency rows that ``serve-bench --connect`` records.

Run:  python examples/network_serving.py
"""

import asyncio

import numpy as np

from repro import HardwareConfig, Mlp, Trainer, TrainingConfig
from repro.api import Engine, ServingDaemon, Session
from repro.data import DataLoader, make_mnist_like
from repro.net import (
    AsyncNetworkClient,
    DaemonRouter,
    NetworkClient,
    RemoteError,
    ServerThread,
    StreamPartial,
    StreamProgress,
    run_load_point,
)


def main() -> None:
    # 1. Train a small reference model --------------------------------
    dataset = make_mnist_like(n_samples=1500, seed=0)
    train, test = dataset.split(train_fraction=0.8, seed=1)
    hardware = HardwareConfig(crossbar_size=16, gray_zone_ua=10.0, window_bits=8)
    model = Mlp(in_features=144, hidden=(64, 32), hardware=hardware, seed=0)
    Trainer(model, TrainingConfig(epochs=10, warmup_epochs=2)).fit(
        DataLoader(train, batch_size=64, seed=2)
    )
    engine = Engine.from_model(model, micro_batch=32)
    print(f"engine: {engine}")

    rng = np.random.default_rng(0)
    batch = test.images[rng.integers(0, len(test.images), size=32)]

    # 2. Daemon + asyncio server on an ephemeral port ------------------
    daemon = ServingDaemon(engine, seed=0, coalesce_window_s=0.01)
    # stream_chunk_rows: slice streamed responses into 8-row PARTIALs
    # (default REPRO_STREAM_CHUNK_ROWS=32 would fit this batch in one).
    with ServerThread(daemon, stream_chunk_rows=8) as (host, port):
        print(f"server: {host}:{port}")

        # 3. Blocking client: wire response == in-process session ------
        with NetworkClient(host, port) as client:
            print(f"ping: {client.ping() * 1e6:.0f} us")
            remote = client.infer(batch, seed=42)
        local = Session(engine, seed=42).run(batch)
        print(
            f"wire == in-process: "
            f"{np.array_equal(remote.logits, local.logits)} "
            f"(windows={remote.summary['total_windows']})"
        )

        # 4. One async connection, many in-flight requests -------------
        async def multiplexed():
            client = await AsyncNetworkClient.connect(host, port)
            try:
                return await asyncio.gather(
                    *(client.infer(batch, seed=100 + i) for i in range(6))
                )
            finally:
                await client.aclose()

        results = asyncio.run(multiplexed())
        identical = all(
            np.array_equal(
                r.logits, Session(engine, seed=100 + i).run(batch).logits
            )
            for i, r in enumerate(results)
        )
        print(f"6 multiplexed requests, all bit-identical: {identical}")

        # 5. Streamed consumption: PROGRESS markers + PARTIAL slices ---
        def on_event(event):
            if isinstance(event, StreamProgress):
                print(f"  progress: {event.stage} {event.detail}")
            elif isinstance(event, StreamPartial):
                print(
                    f"  partial:  seq={event.seq} offset={event.offset} "
                    f"rows={event.logits.shape[0]}"
                )

        with NetworkClient(host, port) as client:
            streamed = client.infer_streamed(batch, seed=42, on_event=on_event)
        print(
            f"reassembled stream == in-process: "
            f"{np.array_equal(streamed.logits, local.logits)}"
        )

        # 8. Load sweep: what serve-bench --connect measures -----------
        point, _ = run_load_point(
            host, port, clients=4, n_requests=16, pool=[batch], seed_base=500
        )
        row = point.as_row()
        print(
            f"closed loop, 4 clients: {row['achieved_rps']:.1f} req/s, "
            f"p50={row['latency_p50_ms']:.1f}ms "
            f"p95={row['latency_p95_ms']:.1f}ms "
            f"p99={row['latency_p99_ms']:.1f}ms"
        )
    daemon.close(drain=True)

    # 6. Router: two replica daemons behind the same server ------------
    # Each replica compiles from the same trained model (fixed compile
    # seed), so any replica answers any seed bit-identically; the
    # router routes sticky by seed, spills past full queues, and fails
    # over evicted replicas transparently.
    router = DaemonRouter.build(
        [engine, Engine.from_model(model, micro_batch=32)],
        seed=0,
        coalesce_window_s=0.01,
    )
    with ServerThread(router) as (host, port):
        with NetworkClient(host, port) as client:
            routed = [client.infer(batch, seed=s) for s in (7, 8, 42)]
        identical = all(
            np.array_equal(
                r.logits, Session(engine, seed=s).run(batch).logits
            )
            for r, s in zip(routed, (7, 8, 42))
        )
        stats = router.stats
        print(
            f"routed over {stats.replicas} replicas "
            f"({ {n: s['dispatched'] for n, s in stats.per_replica.items()} }), "
            f"all bit-identical: {identical}"
        )
    router.close(drain=True)

    # 7. Policed back-pressure: retryable error frames -----------------
    daemon = ServingDaemon(engine, seed=0, coalesce_window_s=0.01)
    with ServerThread(daemon, rate_limit_rps=0.01, rate_burst=1) as (host, port):
        with NetworkClient(host, port) as client:
            client.infer(batch, seed=1)  # spends the only token
            try:
                client.infer(batch, seed=2)
            except RemoteError as exc:
                print(
                    f"rate-limited request: [{exc.code}] retryable={exc.retryable}"
                )
    daemon.close(drain=True)


if __name__ == "__main__":
    main()
