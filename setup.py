"""Legacy setuptools shim kept for offline editable installs (PEP 660
build isolation would fetch the backend from an index); all metadata
lives in pyproject.toml."""

from setuptools import setup

setup()
